"""Experiment runner: builds workloads, traces them once, and simulates
them under arbitrary model/parameter combinations with three cache layers:

1. an in-process memo (same runner, same point -> same object),
2. a persistent on-disk result cache (:mod:`repro.harness.cache`), keyed
   by a content hash of (workload, iterations, model, overrides, code
   version), so warm pytest/benchmark sessions skip simulation entirely,
3. a parallel fan-out engine (:mod:`repro.harness.parallel`) that maps
   batches of points over multiprocessing workers.

Functional traces get the same treatment: :meth:`ExperimentRunner.trace`
returns a columnar :class:`~repro.kernel.tracestore.PackedTrace`, resolved
memo -> persistent trace store -> functional CPU, and batch fan-out hands
workers the persisted blob's path so they ``mmap`` it instead of
re-tracing (DESIGN.md section 12).

Figure/table functions submit their whole point set through
:meth:`ExperimentRunner.run_batch` (collect points -> parallel map ->
assemble); individual :meth:`run` calls then resolve from the memo.
Every resolved point is logged with its wall-clock cost and provenance
("sim" vs "cache") for the reporting layer.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import ConfigSpec, SpecGrid, describe_points
from ..energy import EnergyReport, energy_report, energy_summary
from ..isa import Program
from ..kernel.precompute import (TracePrecompute, bpred_signature,
                                 load_precompute)
from ..kernel.tracestore import (PackedTrace, load_trace, run_trace_packed)
from ..obs.ledger import NULL_LEDGER, PHASE_NAMES
from ..uarch import CoreParams, ModelKind, SimStats, model_params
from ..uarch.pipeline import Simulator
from ..workloads import ALL_NAMES, get_workload
from .cache import (NullCache, NullPrecomputeStore, NullTraceStore,
                    PrecomputeStore, ResultCache, TraceStore, canonical)
from .parallel import (BatchTiming, ParallelEngine, PointTiming, SimPoint,
                       make_point, spec_point)
from .resilience import BatchFailure, FailedPoint, RetryPolicy


@dataclass(frozen=True)
class SimResult:
    """Outcome of simulating one workload under one configuration."""

    workload: str
    model: ModelKind
    stats: SimStats
    energy: EnergyReport

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class ExperimentRunner:
    """Caches traces and simulation results across experiments."""

    def __init__(self, scale: Optional[float] = None, jobs: int = 1,
                 cache: Optional[ResultCache] = None, use_cache: bool = True,
                 progress=None, collect_metrics: bool = False,
                 policy: Optional[RetryPolicy] = None,
                 keep_going: bool = False,
                 trace_store=None, precompute_store=None,
                 ledger=None):
        """``scale`` multiplies every workload's default iteration count
        (e.g. 0.1 for quick tests); None keeps per-workload defaults.
        ``jobs`` is the worker-process count for batch submissions (1 =
        in-process serial).  ``cache`` overrides the default on-disk result
        cache; ``use_cache=False`` disables persistence entirely.
        ``progress`` is an optional callable(str) for live reporting.
        ``collect_metrics=True`` attaches a streaming metrics tracer to
        every simulation and keeps the structured report per point (forces
        in-process simulation: no disk-cache reads, no worker fan-out, so
        the metrics are always complete).  ``policy`` sets per-task
        timeout/retry/backoff for batch submissions (default:
        :class:`RetryPolicy`); with ``keep_going=True`` a batch whose
        points exhaust their retries returns the partial result set and
        records the rest in ``failure_log`` instead of raising
        :class:`BatchFailure`.  ``ledger`` is an optional
        :class:`~repro.obs.ledger.LedgerSink`; the default
        :data:`~repro.obs.ledger.NULL_LEDGER` costs one attribute
        check per emit site (DESIGN.md section 15)."""
        self.scale = scale
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        self.sweep_seq = 0           # monotonic sweep id for ledger spans
        # Cumulative per-phase wall clock (ledger phase spans report the
        # per-sweep delta); names match tools/profile_sim.py.
        self.phase_seconds = {name: 0.0 for name in PHASE_NAMES}
        self.jobs = max(1, int(jobs))
        self.collect_metrics = collect_metrics
        self.policy = policy if policy is not None else RetryPolicy()
        self.keep_going = keep_going
        self.failure_log: List[FailedPoint] = []
        self._failed_keys: Dict[Tuple, FailedPoint] = {}
        self.metrics_log: Dict[Tuple, Dict[str, object]] = {}
        if cache is not None:
            self.cache = cache
        elif use_cache:
            self.cache = ResultCache()
        else:
            self.cache = NullCache()
        if trace_store is not None:
            self.trace_store = trace_store
        elif getattr(self.cache, "root", None) is not None:
            # Keep trace blobs beside the result entries they feed.
            self.trace_store = TraceStore(root=self.cache.root / "traces")
        else:
            self.trace_store = NullTraceStore()
        if precompute_store is not None:
            self.precompute_store = precompute_store
        elif getattr(self.trace_store, "root", None) is not None:
            # Precompute bundles live beside the trace blobs they annotate.
            self.precompute_store = PrecomputeStore(
                root=self.trace_store.root)
        else:
            self.precompute_store = NullPrecomputeStore()
        self.progress = progress
        self._programs: Dict[str, Program] = {}
        self._traces: Dict[str, PackedTrace] = {}
        self._precomputes: Dict[str, TracePrecompute] = {}
        self._bpred_sig: Optional[Tuple[int, int, int]] = None
        self._results: Dict[Tuple, SimResult] = {}
        self.point_log: List[PointTiming] = []
        self.batch_log: List[BatchTiming] = []
        # Functional-trace accounting (the sweep benchmark's zero-retrace
        # assertion reads these; see DESIGN.md section 12).
        self.traces_generated = 0    # functional CPU runs in this process
        self.traces_loaded = 0       # packed traces mapped from the store
        self.worker_retraces = 0     # functional CPU runs inside workers
        # Precompute-bundle accounting (DESIGN.md section 14): "exactly
        # one precompute per distinct trace" is built + loaded == number
        # of distinct traces swept, asserted in tests via BatchTiming.
        self.precomputes_built = 0   # bundles analysed in this process
        self.precomputes_loaded = 0  # bundles mapped from the store
        self.worker_precomputes_built = 0
        self.worker_precomputes_loaded = 0

    # -- workload plumbing ---------------------------------------------------

    def iterations(self, workload: str) -> int:
        """Resolved iteration count (part of the persistent cache key)."""
        spec = get_workload(workload)
        if self.scale is None:
            return spec.default_scale
        return max(1, int(round(spec.default_scale * self.scale)))

    def program(self, workload: str) -> Program:
        if workload not in self._programs:
            spec = get_workload(workload)
            iterations = None
            if self.scale is not None:
                iterations = self.iterations(workload)
            self._programs[workload] = spec.build(iterations)
        return self._programs[workload]

    def trace(self, workload: str) -> PackedTrace:
        """The packed dynamic trace for a workload: memo -> store -> trace.

        A store hit maps the persisted columnar blob read-only (zero
        functional re-execution); a miss runs the functional CPU once and
        persists the packed result for every later session and worker.
        """
        if workload not in self._traces:
            program = self.program(workload)
            iterations = self.iterations(workload)
            start = time.perf_counter()
            packed = self.trace_store.load(workload, iterations, program)
            self.phase_seconds["trace store I/O"] += (time.perf_counter()
                                                      - start)
            if packed is not None:
                self.traces_loaded += 1
                if self.ledger.enabled:
                    self.ledger.emit(
                        "store.trace", workload=workload, event="hit",
                        bytes=self._blob_size(
                            self.trace_store.path_for(workload, iterations)))
            else:
                # A blob that exists but failed to decode (truncated,
                # format-bumped, stale) is a corrupt-miss, not a cold one.
                stale = None
                if self.ledger.enabled:
                    stale = self.trace_store.path_for(workload, iterations)
                    stale = stale is not None and stale.exists()
                start = time.perf_counter()
                packed = run_trace_packed(program)
                self.phase_seconds["functional tracing"] += (
                    time.perf_counter() - start)
                self.traces_generated += 1
                start = time.perf_counter()
                self.trace_store.put(workload, iterations, packed)
                self.phase_seconds["trace store I/O"] += (time.perf_counter()
                                                          - start)
                if self.ledger.enabled:
                    self.ledger.emit(
                        "store.trace", workload=workload,
                        event="corrupt-miss" if stale else "build",
                        bytes=self._blob_size(
                            self.trace_store.path_for(workload, iterations)))
            self._traces[workload] = packed
        return self._traces[workload]

    @staticmethod
    def _blob_size(path) -> Optional[int]:
        if path is None:
            return None
        try:
            return path.stat().st_size
        except OSError:
            return None

    def ensure_trace(self, workload: str) -> Optional[str]:
        """Make sure the store holds this workload's trace; returns its
        path (None when the store is a :class:`NullTraceStore`), so batch
        fan-out can hand workers a blob to map instead of re-tracing."""
        self.trace(workload)
        path = self.trace_store.path_for(workload,
                                         self.iterations(workload))
        if path is None:
            return None
        return str(path)

    def attach_trace(self, workload: str, path: str) -> bool:
        """Adopt a packed trace blob produced by another process.

        Returns True when the blob decoded against this runner's program;
        on any failure the memo is left empty so :meth:`trace` falls back
        to re-tracing (a stale/corrupt blob must never kill a worker)."""
        try:
            packed = load_trace(path, self.program(workload))
        except Exception:
            return False
        self._traces[workload] = packed
        self.traces_loaded += 1
        return True

    @property
    def functional_traces(self) -> int:
        """Functional CPU executions this runner caused, anywhere."""
        return self.traces_generated + self.worker_retraces

    # -- precompute plumbing -------------------------------------------------

    def _bpred_signature(self):
        """The default predictor geometry bundles are keyed by.  A point
        that overrides any of it fails ``TracePrecompute.matches`` inside
        the Simulator and transparently takes the per-run path."""
        if self._bpred_sig is None:
            self._bpred_sig = bpred_signature(
                model_params(ModelKind.BASELINE))
        return self._bpred_sig

    def precompute_for(self, workload: str) -> TracePrecompute:
        """The shared whole-trace bundle: memo -> store -> build (+ put).

        Batch submissions resolve this once per distinct trace and every
        config simulated against that trace shares the result; the
        built/loaded counters back the sweep benchmark's
        "exactly one precompute per trace" gate.
        """
        bundle = self._precomputes.get(workload)
        if bundle is None:
            trace = self.trace(workload)
            signature = self._bpred_signature()
            iterations = self.iterations(workload)
            start = time.perf_counter()
            bundle = self.precompute_store.load(
                workload, iterations, trace, signature)
            self.phase_seconds["precompute"] += time.perf_counter() - start
            if bundle is not None:
                self.precomputes_loaded += 1
                if self.ledger.enabled:
                    self.ledger.emit(
                        "store.precompute", workload=workload, event="hit",
                        bytes=self._blob_size(self.precompute_store.path_for(
                            workload, iterations, signature)))
            else:
                stale = None
                if self.ledger.enabled:
                    stale = self.precompute_store.path_for(
                        workload, iterations, signature)
                    stale = stale is not None and stale.exists()
                start = time.perf_counter()
                bundle = TracePrecompute.build(trace, signature)
                self.precomputes_built += 1
                self.phase_seconds["precompute"] += (time.perf_counter()
                                                     - start)
                start = time.perf_counter()
                self.precompute_store.put(workload, iterations, bundle)
                self.phase_seconds["trace store I/O"] += (time.perf_counter()
                                                          - start)
                if self.ledger.enabled:
                    self.ledger.emit(
                        "store.precompute", workload=workload,
                        event="corrupt-miss" if stale else "build",
                        bytes=self._blob_size(self.precompute_store.path_for(
                            workload, iterations, signature)))
            self._precomputes[workload] = bundle
        return bundle

    def ensure_precompute(self, workload: str) -> Optional[str]:
        """Make sure the store holds this workload's bundle; returns its
        path (None without a persistent store), for worker fan-out."""
        self.precompute_for(workload)
        path = self.precompute_store.path_for(
            workload, self.iterations(workload), self._bpred_signature())
        if path is None:
            return None
        return str(path)

    def attach_precompute(self, workload: str, path: str) -> bool:
        """Adopt a precompute blob produced by another process.

        Returns True when the blob decoded against this runner's trace;
        any failure leaves the memo empty so :meth:`precompute_for`
        falls back to rebuilding (a stale blob never kills a worker)."""
        try:
            bundle = load_precompute(path, self.trace(workload),
                                     self._bpred_signature())
        except Exception:
            return False
        self._precomputes[workload] = bundle
        self.precomputes_loaded += 1
        return True

    # -- cache plumbing ------------------------------------------------------

    def _memo_key(self, workload: str, spec: ConfigSpec) -> Tuple:
        # The spec *is* the canonical configuration (validated, sorted,
        # default-dropped), so memo and disk keys share one form: two
        # constructions of the same parameters -- bare overrides, dotted
        # --set flags, a grid expansion -- agree on both keys.
        return (workload, spec)

    def _disk_key(self, workload: str, spec: ConfigSpec) -> str:
        return self.cache.key_for_spec(workload, self.iterations(workload),
                                       spec)

    def _log_point(self, workload: str, model: ModelKind, seconds: float,
                   source: str, result=None, overrides=None) -> None:
        self.point_log.append(PointTiming(workload, model, seconds, source))
        if self.ledger.enabled:
            fields = {"workload": workload, "model": model.value,
                      "source": source, "seconds": round(seconds, 6)}
            if overrides:
                fields["overrides"] = canonical(overrides)
            if result is not None:
                # energy/edp are the exact floats energy_report produced
                # (JSON round-trips doubles losslessly), so ledger spans
                # agree with repro.energy to the last ulp.
                summary = energy_summary(result.energy)
                fields.update(ipc=result.ipc, cycles=summary["cycles"],
                              energy=summary["total"], edp=summary["edp"],
                              energy_by_event=summary["by_event"])
            self.ledger.emit("point.completed", **fields)
        if self.progress is not None:
            self.progress("  %-10s %-8s %-5s %.3fs"
                          % (workload, model.value, source, seconds))

    # -- simulation ------------------------------------------------------------

    def _simulate(self, workload: str, spec: ConfigSpec) -> SimResult:
        params = spec.to_params()
        tracer = None
        if self.collect_metrics:
            from ..obs import MetricsTracer  # deferred: keeps import light
            tracer = MetricsTracer()
        # Batch submissions resolve a shared precompute bundle per trace
        # (see run_batch); single-point run() stays on the per-run path.
        pre = self._precomputes.get(workload)
        if pre is not None:
            stats = Simulator(self.program(workload), pre.cached_trace(),
                              params, tracer=tracer, precompute=pre).run()
        else:
            stats = Simulator(self.program(workload), self.trace(workload),
                              params, tracer=tracer).run()
        if tracer is not None:
            self.metrics_log[self._memo_key(workload,
                                            spec)] = tracer.report()
        return SimResult(workload=workload, model=spec.model, stats=stats,
                         energy=energy_report(stats, params.energy))

    def metrics_for(self, workload: str, model: ModelKind,
                    **overrides) -> Optional[Dict[str, object]]:
        """Structured metrics for a point simulated under
        ``collect_metrics=True`` (None when it was never simulated here)."""
        spec = ConfigSpec.from_overrides(model, **overrides)
        return self.metrics_log.get(self._memo_key(workload, spec))

    def run_traced(self, workload: str, model: ModelKind, tracer,
                   spec: Optional[ConfigSpec] = None,
                   **overrides) -> SimResult:
        """Simulate one point with an explicit tracer attached.

        Always simulates (a cached result has no event stream); the stats
        are still pushed to the disk cache since tracing does not perturb
        them.  Pass either a ready ``spec`` or legacy overrides."""
        start = time.perf_counter()
        if spec is None:
            spec = ConfigSpec.from_overrides(model, **overrides)
        params = spec.to_params()
        stats = Simulator(self.program(workload), self.trace(workload),
                          params, tracer=tracer).run()
        result = SimResult(workload=workload, model=spec.model, stats=stats,
                           energy=energy_report(stats, params.energy))
        self.cache.put(self._disk_key(workload, spec), result)
        self._results[self._memo_key(workload, spec)] = result
        self._log_point(workload, spec.model, time.perf_counter() - start,
                        "sim", result=result,
                        overrides=spec.setting_dict())
        return result

    def run(self, workload: str, model: ModelKind,
            **overrides) -> SimResult:
        """Simulate one point; memoised in-process and on disk.

        Thin wrapper: the overrides are validated and canonicalised into
        a :class:`~repro.config.ConfigSpec` (a typo fails here with a
        did-you-mean hint) and :meth:`run_spec` does the work.
        """
        return self.run_spec(workload,
                             ConfigSpec.from_overrides(model, **overrides))

    def run_spec(self, workload: str, spec: ConfigSpec) -> SimResult:
        """Simulate one spec-described point; memoised in-process and on
        disk (both keys derive from the spec's canonical form)."""
        key = self._memo_key(workload, spec)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        if key in self._failed_keys:
            # The point already exhausted its retry budget this session;
            # surface the recorded failure instead of re-simulating.
            raise BatchFailure([self._failed_keys[key]])
        start = time.perf_counter()
        disk_key = self._disk_key(workload, spec)
        # Metrics collection needs a live simulation: skip the disk cache.
        result = None if self.collect_metrics else self.cache.get(disk_key)
        if result is not None:
            self._log_point(workload, spec.model,
                            time.perf_counter() - start, "cache",
                            result=result, overrides=spec.setting_dict())
        else:
            result = self._simulate(workload, spec)
            self.cache.put(disk_key, result)
            self._log_point(workload, spec.model,
                            time.perf_counter() - start, "sim",
                            result=result, overrides=spec.setting_dict())
        self._results[key] = result
        return result

    def run_with_params(self, workload: str, params: CoreParams) -> SimResult:
        """Simulate with a fully custom (non-memoised) configuration."""
        stats = Simulator(self.program(workload), self.trace(workload),
                          params).run()
        return SimResult(workload=workload, model=params.model, stats=stats,
                         energy=energy_report(stats, params.energy))

    # -- batch fan-out -------------------------------------------------------

    def _publish(self, timing: BatchTiming, out: Dict[SimPoint, SimResult],
                 point: SimPoint, result: SimResult, seconds: float) -> None:
        """Checkpoint one resolved point: disk cache + memo, immediately.

        Called *as each point resolves* (streamed from the parallel
        engine), not after the whole batch, so an interrupted sweep
        keeps everything that completed before it died.
        """
        timing.sim_seconds += seconds
        spec = point.spec
        self.cache.put(self._disk_key(point.workload, spec), result)
        key = self._memo_key(point.workload, spec)
        self._results[key] = result
        self._failed_keys.pop(key, None)
        out[point] = result
        self._log_point(point.workload, spec.model, seconds, "sim",
                        result=result, overrides=spec.setting_dict())

    def _simulate_with_retry(self, point: SimPoint,
                             publish) -> Optional[FailedPoint]:
        """Serial path: simulate one point under the retry policy.

        Publishes on success and returns None; returns a
        :class:`FailedPoint` with the captured traceback once the retry
        budget is spent.  (No preemption in-process, so the policy's
        wall-clock timeout is not enforced here.)
        """
        spec = point.spec
        attempts = 0
        while True:
            attempts += 1
            start = time.perf_counter()
            try:
                result = self._simulate(point.workload, spec)
            except Exception:
                detail = traceback.format_exc()
                if attempts > self.policy.retries:
                    return FailedPoint(point=point, kind="error",
                                       detail=detail, attempts=attempts)
                time.sleep(self.policy.delay_for(attempts))
                continue
            publish(point, result, time.perf_counter() - start)
            return None

    def run_batch(self, points: Iterable[SimPoint]) -> Dict[SimPoint,
                                                            SimResult]:
        """Resolve a whole point set: memo -> disk cache -> parallel map.

        Returns {point: SimResult}; every result is also memoised, so
        subsequent :meth:`run` calls for the same points are free.
        Completed points are published to the disk cache as they
        resolve (checkpointing), so an interrupted sweep resumes from
        the cache on the next run.  Points that exhaust their retry
        budget are recorded in :attr:`failure_log` and omitted from the
        returned dict; unless ``keep_going`` is set the batch then
        raises :class:`BatchFailure` -- after the survivors were
        published, so completed work is never lost.
        """
        batch_start = time.perf_counter()
        traces_before = self.traces_generated
        pre_built_before = self.precomputes_built
        pre_loaded_before = self.precomputes_loaded
        phases_before = dict(self.phase_seconds)
        points = list(points)
        self.sweep_seq += 1
        sweep_id = self.sweep_seq
        if self.ledger.enabled:
            # The grid payload records what this sweep *is* -- workloads,
            # models, and every non-default setting axis -- so a ledger
            # alone reconstructs the declared cross-product.
            self.ledger.emit("sweep.begin", sweep=sweep_id, jobs=self.jobs,
                             submitted=len(points),
                             grid=describe_points(
                                 (p.workload, p.spec) for p in points))
        timing = BatchTiming(jobs=self.jobs)
        out: Dict[SimPoint, SimResult] = {}
        misses: List[SimPoint] = []
        failures: List[FailedPoint] = []
        seen = set()
        for point in points:
            if point in seen:
                continue
            seen.add(point)
            timing.points += 1
            spec = point.spec
            key = self._memo_key(point.workload, spec)
            cached = self._results.get(key)
            if cached is not None:
                timing.memo_hits += 1
                out[point] = cached
                continue
            if key in self._failed_keys:
                # Exhausted its retries earlier this session; don't burn
                # another full retry budget on it in every later batch.
                failures.append(self._failed_keys[key])
                continue
            start = time.perf_counter()
            result = self.cache.get(self._disk_key(point.workload, spec))
            if result is not None:
                timing.cache_hits += 1
                self._results[key] = result
                out[point] = result
                self._log_point(point.workload, spec.model,
                                time.perf_counter() - start, "cache",
                                result=result,
                                overrides=spec.setting_dict())
            else:
                misses.append(point)

        fresh_failures: List[FailedPoint] = []
        if misses:
            timing.simulated = len(misses)

            def publish(point, result, seconds):
                self._publish(timing, out, point, result, seconds)

            # Metrics collection happens in _simulate, so fall back to
            # in-process simulation instead of the worker fan-out.
            if self.jobs > 1 and len(misses) > 1 and not self.collect_metrics:
                # Trace + precompute every miss workload once *here*, so
                # workers map the persisted blobs instead of re-running
                # the functional CPU or re-analysing the trace.
                trace_paths: Dict[str, object] = {}
                for workload in sorted({p.workload for p in misses}):
                    path = self.ensure_trace(workload)
                    if path is not None:
                        pre_path = self.ensure_precompute(workload)
                        trace_paths[workload] = ((path, pre_path)
                                                 if pre_path else path)
                engine = ParallelEngine(jobs=self.jobs, scale=self.scale,
                                        progress=self.progress,
                                        policy=self.policy,
                                        on_result=publish,
                                        trace_paths=trace_paths or None,
                                        ledger=self.ledger)
                resolved = engine.run_points(misses)
                fresh_failures.extend(engine.failures)
                timing.retried += engine.retried
                timing.timed_out += engine.timed_out
                timing.worker_retraces += engine.worker_retraces
                self.worker_retraces += engine.worker_retraces
                timing.worker_precomputes_built += \
                    engine.worker_precomputes_built
                timing.worker_precomputes_loaded += \
                    engine.worker_precomputes_loaded
                self.worker_precomputes_built += \
                    engine.worker_precomputes_built
                self.worker_precomputes_loaded += \
                    engine.worker_precomputes_loaded
                # Defensive: a point the engine neither resolved nor
                # recorded as failed is reported, never KeyError'd.
                accounted = set(resolved)
                accounted.update(f.point for f in fresh_failures)
                for point in misses:
                    if point not in accounted:
                        fresh_failures.append(FailedPoint(
                            point=point, kind="lost",
                            detail="engine returned neither a result nor "
                                   "a failure record", attempts=0))
            else:
                # Group the config cross-product by trace: resolve one
                # shared precompute bundle per distinct workload, then run
                # all of a trace's configs back-to-back against it (the
                # stable sort preserves submission order within a trace).
                if not self.collect_metrics:
                    for workload in sorted({p.workload for p in misses}):
                        try:
                            self.precompute_for(workload)
                        except Exception:
                            pass    # per-run path still works without it
                    misses.sort(key=lambda p: p.workload)
                for point in misses:
                    failure = self._simulate_with_retry(point, publish)
                    if failure is not None:
                        fresh_failures.append(failure)
                        if not self.keep_going:
                            break   # fail fast; survivors are cached

        if fresh_failures:
            self.failure_log.extend(fresh_failures)
            for failure in fresh_failures:
                self._failed_keys[self._memo_key(
                    failure.point.workload,
                    failure.point.spec)] = failure
            failures.extend(fresh_failures)
        timing.failed = len(failures)
        timing.traces_generated = self.traces_generated - traces_before
        timing.precomputes_built = self.precomputes_built - pre_built_before
        timing.precomputes_loaded = (self.precomputes_loaded
                                     - pre_loaded_before)
        timing.wall_seconds = time.perf_counter() - batch_start
        if timing.points:
            self.batch_log.append(timing)
        if self.ledger.enabled:
            for failure in failures:
                self.ledger.emit(
                    "point.failed", workload=failure.point.workload,
                    model=failure.point.model.value, cause=failure.kind,
                    attempts=failure.attempts,
                    overrides=(canonical(failure.point.override_dict)
                               if failure.point.overrides else None),
                    detail=failure.detail or None)
            # "timing simulation" is the summed per-point simulation
            # time; the other phases are this batch's deltas of the
            # runner-lifetime accumulators fed by trace()/precompute_for().
            for name in PHASE_NAMES:
                delta = (timing.sim_seconds if name == "timing simulation"
                         else self.phase_seconds[name] - phases_before[name])
                if delta > 0.0:
                    self.ledger.emit("phase", sweep=sweep_id, name=name,
                                     seconds=round(delta, 6))
            self.ledger.emit(
                "sweep.end", sweep=sweep_id, points=timing.points,
                simulated=timing.simulated, memo_hits=timing.memo_hits,
                cache_hits=timing.cache_hits, failed=timing.failed,
                retried=timing.retried, timed_out=timing.timed_out,
                wall_seconds=round(timing.wall_seconds, 6),
                sim_seconds=round(timing.sim_seconds, 6),
                traces_generated=timing.traces_generated or None,
                worker_retraces=timing.worker_retraces or None,
                precomputes_built=timing.precomputes_built or None,
                precomputes_loaded=timing.precomputes_loaded or None,
                worker_precomputes_built=(timing.worker_precomputes_built
                                          or None),
                worker_precomputes_loaded=(timing.worker_precomputes_loaded
                                           or None))
        if failures and not self.keep_going:
            raise BatchFailure(failures)
        return out

    def prefetch(self, points: Iterable[SimPoint]) -> None:
        """Warm the memo for a point set (parallel when ``jobs`` > 1)."""
        self.run_batch(points)

    def run_suite(self, model: ModelKind,
                  workloads: Optional[Iterable[str]] = None,
                  spec: Optional[ConfigSpec] = None,
                  **overrides) -> Dict[str, SimResult]:
        """Simulate one model across a workload list (default: all 21).

        Pass either a ready ``spec`` (whose model must match) or legacy
        keyword overrides.  With ``keep_going`` the dict is partial:
        failed workloads are absent (see :attr:`failure_log`) instead of
        raising.
        """
        if spec is None:
            spec = ConfigSpec.from_overrides(model, **overrides)
        elif overrides:
            raise TypeError("run_suite: pass a spec or overrides, not both")
        names = list(workloads) if workloads is not None else list(ALL_NAMES)
        points = {name: spec_point(name, spec) for name in names}
        resolved = self.run_batch(points.values())
        return {name: resolved[point] for name, point in points.items()
                if point in resolved}

    def run_matrix(self, models: Iterable[ModelKind],
                   workloads: Optional[Iterable[str]] = None,
                   **overrides) -> Dict[ModelKind, Dict[str, SimResult]]:
        """Simulate several models across a workload list."""
        names = list(workloads) if workloads is not None else list(ALL_NAMES)
        models = list(models)
        specs = {model: ConfigSpec.from_overrides(model, **overrides)
                 for model in models}
        self.prefetch(spec_point(name, spec)
                      for spec in specs.values() for name in names)
        return {model: self.run_suite(model, names, spec=spec)
                for model, spec in specs.items()}

    def run_grid(self, grid: SpecGrid,
                 workloads: Optional[Iterable[str]] = None
                 ) -> Dict[SimPoint, SimResult]:
        """Expand a declared spec grid across workloads and resolve it.

        The cross-product is workload-major then grid order (the grid's
        own expansion is deterministic), submitted as one batch so the
        ledger's ``sweep.begin`` records the whole grid.
        """
        names = list(workloads) if workloads is not None else list(ALL_NAMES)
        return self.run_batch(spec_point(name, spec)
                              for name in names for spec in grid.expand())

    # -- accounting ----------------------------------------------------------

    def cache_size(self) -> int:
        return len(self._results)

    def points_simulated(self) -> int:
        return sum(1 for p in self.point_log if p.source == "sim")

    def points_from_cache(self) -> int:
        return sum(1 for p in self.point_log if p.source == "cache")


# A process-wide runner shared by the benchmark files.
_SHARED: Optional[ExperimentRunner] = None

_UNSET = object()


def shared_runner(scale=_UNSET) -> ExperimentRunner:
    """The process-wide runner; the first caller fixes the scale.

    A later caller asking for a *different* scale gets a ``ValueError``
    -- silently handing back a runner with the wrong scale would poison
    every downstream result (and its cache keys).  Omit the argument to
    accept whatever scale the runner was first built with.
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = ExperimentRunner(scale=None if scale is _UNSET else scale)
    elif scale is not _UNSET and scale != _SHARED.scale:
        raise ValueError(
            "shared_runner() was built with scale=%r; a conflicting "
            "scale=%r was requested (omit the argument to reuse it)"
            % (_SHARED.scale, scale))
    return _SHARED
