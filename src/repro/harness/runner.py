"""Experiment runner: builds workloads, traces them once, and simulates
them under arbitrary model/parameter combinations with memoisation.

Every figure/table benchmark shares one module-level :class:`ExperimentRunner`
so a full ``pytest benchmarks/`` session never simulates the same
(workload, model, parameters) point twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..energy import EnergyReport, energy_report
from ..isa import Program
from ..kernel import FunctionalCpu
from ..kernel.trace import TraceEntry
from ..uarch import CoreParams, ModelKind, SimStats, model_params
from ..uarch.pipeline import Simulator
from ..workloads import ALL_NAMES, get_workload


@dataclass(frozen=True)
class SimResult:
    """Outcome of simulating one workload under one configuration."""

    workload: str
    model: ModelKind
    stats: SimStats
    energy: EnergyReport

    @property
    def ipc(self) -> float:
        return self.stats.ipc


def _freeze(value):
    """Hashable form of a parameter override value."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


class ExperimentRunner:
    """Caches traces and simulation results across experiments."""

    def __init__(self, scale: Optional[float] = None):
        """``scale`` multiplies every workload's default iteration count
        (e.g. 0.1 for quick tests); None keeps per-workload defaults."""
        self.scale = scale
        self._programs: Dict[str, Program] = {}
        self._traces: Dict[str, List[TraceEntry]] = {}
        self._results: Dict[Tuple, SimResult] = {}

    # -- workload plumbing ---------------------------------------------------

    def program(self, workload: str) -> Program:
        if workload not in self._programs:
            spec = get_workload(workload)
            iterations = None
            if self.scale is not None:
                iterations = max(1, int(round(spec.default_scale
                                              * self.scale)))
            self._programs[workload] = spec.build(iterations)
        return self._programs[workload]

    def trace(self, workload: str) -> List[TraceEntry]:
        if workload not in self._traces:
            cpu = FunctionalCpu(self.program(workload))
            self._traces[workload] = cpu.run_trace(max_instructions=5_000_000)
        return self._traces[workload]

    # -- simulation ------------------------------------------------------------

    def run(self, workload: str, model: ModelKind,
            **overrides) -> SimResult:
        """Simulate one point; results are memoised."""
        key = (workload, model, _freeze(overrides))
        cached = self._results.get(key)
        if cached is not None:
            return cached
        params = model_params(model, **overrides)
        stats = Simulator(self.program(workload), self.trace(workload),
                          params).run()
        result = SimResult(workload=workload, model=model, stats=stats,
                           energy=energy_report(stats, params.energy))
        self._results[key] = result
        return result

    def run_with_params(self, workload: str, params: CoreParams) -> SimResult:
        """Simulate with a fully custom (non-memoised) configuration."""
        stats = Simulator(self.program(workload), self.trace(workload),
                          params).run()
        return SimResult(workload=workload, model=params.model, stats=stats,
                         energy=energy_report(stats, params.energy))

    def run_suite(self, model: ModelKind,
                  workloads: Optional[Iterable[str]] = None,
                  **overrides) -> Dict[str, SimResult]:
        """Simulate one model across a workload list (default: all 21)."""
        names = list(workloads) if workloads is not None else ALL_NAMES
        return {name: self.run(name, model, **overrides) for name in names}

    def run_matrix(self, models: Iterable[ModelKind],
                   workloads: Optional[Iterable[str]] = None,
                   **overrides) -> Dict[ModelKind, Dict[str, SimResult]]:
        """Simulate several models across a workload list."""
        return {model: self.run_suite(model, workloads, **overrides)
                for model in models}

    def cache_size(self) -> int:
        return len(self._results)


# A process-wide runner shared by the benchmark files.
_SHARED: Optional[ExperimentRunner] = None


def shared_runner(scale: Optional[float] = None) -> ExperimentRunner:
    """The process-wide runner; the first caller fixes the scale."""
    global _SHARED
    if _SHARED is None:
        _SHARED = ExperimentRunner(scale=scale)
    return _SHARED
