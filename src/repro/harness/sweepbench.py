"""Sweep-level benchmark: wall-clock and memory cost of a multi-model sweep.

The hot-loop benchmark (:mod:`repro.harness.hotloop`) tracks the timing
simulator's inner loop; this module tracks the layer above it -- a whole
parameter sweep, where since the fault-tolerant engine every point runs
in a fresh session (supervised worker process) and functional tracing is
repeated O(points) unless something persists the trace.  That something
is the columnar trace store (DESIGN.md section 12); this benchmark is its
tracked artifact (``BENCH_sweep.json``).

Each *leg* runs the same point matrix -- BENCH_WORKLOADS x all four
models x two store-buffer configurations -- one fresh runner per point,
mirroring the one-process-per-point sweep:

* ``legacy``     -- pre-trace-store behaviour, reproduced exactly: every
                    point re-runs the functional CPU and simulates from a
                    ``List[TraceEntry]``.  The baseline.
* ``cold``       -- trace store + result cache enabled but empty: the
                    first point of each workload traces and packs, every
                    later point maps the blob.
* ``warm_store`` -- trace store warm, result cache disabled: every point
                    still simulates, but *zero* functional traces run.
                    The store's isolated contribution.
* ``batched``    -- trace + precompute stores warm, result cache
                    disabled, and the whole matrix submitted through one
                    ``run_batch``: the scheduler groups the cross-product
                    by trace, attaches each trace + precompute bundle
                    once, and runs all of its configs back-to-back
                    (DESIGN.md section 14).  Every point still simulates;
                    the delta vs. ``warm_store`` is the batched timing
                    core's isolated contribution.
* ``warm``       -- trace store and result cache both warm: the re-run /
                    resume workflow.  Zero traces, zero simulations.

The headline ``speedup_warm`` (legacy wall / warm wall) is what a
repeated sweep actually costs after this change; ``speedup_warm_store``
isolates the trace store with the result cache out of the picture, and
``batched_vs_warm_store`` isolates per-trace grouping + shared
precompute against the ungrouped warm leg.  A separate probe forks one
child per mode and compares peak RSS (``ru_maxrss``) of a worker
simulating from a list trace vs. an ``mmap``-ed packed trace.

``--check`` (CI) asserts: zero functional traces on the warm and batched
legs, byte-identical IPC across all legs, the warm speedup floor, a
warm-store speedup above noise, the batched-vs-warm-store floor, exactly
one precompute load per distinct trace on the batched leg (and zero
rebuilds), and an RSS drop.
"""

from __future__ import annotations

import multiprocessing
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..config import ConfigSpec, SpecGrid
from ..energy import energy_report
from ..kernel import FunctionalCpu
from ..kernel.trace import MAX_TRACE_INSTRUCTIONS
from ..uarch import ModelKind
from ..uarch.pipeline import Simulator
from ..workloads import get_workload
from .cache import NullCache, NullTraceStore, ResultCache, TraceStore
from .hotloop import SCHEMA, calibrate, write_report  # shared report idiom
from .runner import ExperimentRunner

# Same memory-bound pair the hot-loop benchmark pins (the sweeps' floor).
BENCH_WORKLOADS = ("mcf", "lbm")

BENCH_MODELS = (ModelKind.BASELINE, ModelKind.NOSQ, ModelKind.DMDP,
                ModelKind.PERFECT)

# Two configurations per (workload, model) -- the default 16-entry store
# buffer (which default-drops to an empty spec) and an 8-entry one: the
# sweep shape that makes per-point re-tracing O(points) rather than
# O(workloads).  Declared as a spec grid, expanded deterministically.
BENCH_GRID = SpecGrid.create(BENCH_MODELS,
                             {"core.store_buffer_entries": [16, 8]})

# Scale used by ``--smoke`` (CI): same matrix, quarter iteration count.
SMOKE_SCALE = 0.25

# The RSS probe needs a trace long enough that the per-entry object
# overhead of a ``List[TraceEntry]`` dominates the interpreter's baseline
# footprint (~20 MB); sweep scales are too small for that, so the probe
# runs its single point at its own larger scale.
PROBE_SCALE = 8.0
SMOKE_PROBE_SCALE = 4.0

# ``--check`` gates.  The warm floor is the acceptance bar for the trace
# store work; the warm-store floor only needs to clear measurement noise
# (tracing is ~25-35% of a point's cost, so the honest isolated win is
# ~1.2-1.35x on these workloads).  The batched floor is the acceptance
# bar for the batched timing core: per-trace-grouped scheduling with a
# shared precompute bundle must beat the ungrouped warm leg on per-point
# warm throughput.  Calibration: the per-run precompute passes plus the
# lazy entry/decode materialisation the bundle amortises are ~25-30% of
# a warm-store point, so clean-machine smoke runs measure 1.27-1.39x; a
# 1.2 floor fails any real regression (redundant precompute work shows
# up as ~1.0x) without flaking on leg-ordering noise.
MIN_WARM_SPEEDUP = 1.5
MIN_WARM_STORE_SPEEDUP = 1.05
MIN_BATCHED_SPEEDUP = 1.2

# Ceiling on the cost of recording a sweep ledger (ISSUE 8 acceptance:
# a warm 16-point sweep with --ledger stays within 5% of one without).
# Both legs are timed best-of-N in the same session, so the gate is
# machine-independent; the flush-per-span JSONL writer costs well under
# 1% at these span rates.
MAX_LEDGER_OVERHEAD_PERCENT = 5.0

_LEG_DESCRIPTIONS = {
    "legacy": "no trace store, no result cache: every point re-traces "
              "and re-simulates (pre-store behaviour)",
    "cold": "trace store + result cache enabled but empty",
    "warm_store": "trace store warm, result cache disabled: zero traces, "
                  "every point still simulates",
    "batched": "trace + precompute stores warm, result cache disabled, "
               "whole matrix in one run_batch: per-trace grouping with a "
               "shared precompute bundle; every point still simulates",
    "warm": "trace store and result cache warm: the re-run workflow",
}


def bench_points() -> List[Tuple[str, ConfigSpec]]:
    """The benchmark matrix: workload-major over the grid's expansion."""
    return [(workload, spec)
            for workload in BENCH_WORKLOADS
            for spec in BENCH_GRID.expand()]


def _run_point_legacy(workload: str, spec: ConfigSpec,
                      scale: Optional[float]) -> float:
    """One pre-store point session: list trace, list-path simulation.

    Reproduces what a fresh worker did before the trace store existed,
    so the ``legacy`` leg is an honest baseline rather than a strawman.
    """
    wspec = get_workload(workload)
    iterations = None
    if scale is not None:
        iterations = max(1, int(round(wspec.default_scale * scale)))
    program = wspec.build(iterations)
    trace = FunctionalCpu(program).run_trace(
        max_instructions=MAX_TRACE_INSTRUCTIONS)
    params = spec.to_params()
    stats = Simulator(program, trace, params).run()
    energy_report(stats, params.energy)
    return stats.ipc


def _leg_runner(scale: Optional[float], store_root: Optional[Path],
                cache_root: Optional[Path]) -> ExperimentRunner:
    return ExperimentRunner(
        scale=scale, jobs=1,
        cache=(ResultCache(root=cache_root) if cache_root is not None
               else NullCache()),
        trace_store=(TraceStore(root=store_root) if store_root is not None
                     else NullTraceStore()))


def _run_leg(leg: str, scale: Optional[float],
             store_root: Optional[Path], cache_root: Optional[Path],
             repeats: int = 1, progress=None
             ) -> Tuple[Dict[str, object], Dict[tuple, float]]:
    """Run the full point matrix, one fresh runner per point.

    With ``repeats`` > 1 the whole matrix is timed best-of-N (the legs
    compared for speedups are idempotent, so re-running them is sound;
    the min discards scheduler noise the way the hot-loop benchmark
    does).  Trace/simulation counters come from the first pass -- they
    are identical on every pass by construction.

    The ``batched`` leg is the one exception to one-runner-per-point: it
    submits the whole matrix through a single fresh runner's
    ``run_batch`` (per pass), which is precisely the scheduling change
    it measures -- the runner groups the cross-product by trace and
    shares one precompute bundle per workload.

    Returns the leg's payload entry and its per-point IPC map (used to
    assert every leg resolves byte-identical statistics).
    """
    ipc: Dict[tuple, float] = {}
    traces = 0
    loaded = 0
    simulated = 0
    pre_built = 0
    pre_loaded = 0
    wall = float("inf")
    for attempt in range(max(1, repeats)):
        if leg == "batched":
            from .parallel import spec_point
            points = [spec_point(workload, spec)
                      for workload, spec in bench_points()]
            start = time.perf_counter()
            runner = _leg_runner(scale, store_root, cache_root)
            resolved = runner.run_batch(points)
            wall = min(wall, time.perf_counter() - start)
            if attempt == 0:
                traces += runner.functional_traces
                loaded += runner.traces_loaded
                simulated += runner.points_simulated()
                pre_built += runner.precomputes_built
                pre_loaded += runner.precomputes_loaded
            for point, result in resolved.items():
                ipc[(point.workload, point.model.value,
                     point.overrides)] = result.ipc
            continue
        start = time.perf_counter()
        for workload, spec in bench_points():
            if leg == "legacy":
                point_ipc = _run_point_legacy(workload, spec, scale)
                if attempt == 0:
                    traces += 1
                    simulated += 1
            else:
                runner = _leg_runner(scale, store_root, cache_root)
                point_ipc = runner.run_spec(workload, spec).ipc
                if attempt == 0:
                    traces += runner.functional_traces
                    loaded += runner.traces_loaded
                    simulated += runner.points_simulated()
            # Every leg keys its IPC map by the spec's canonical settings
            # (the same key the batched leg's SimPoints carry), so the
            # byte-identity assertion compares like with like.
            ipc[(workload, spec.model.value, spec.settings)] = point_ipc
        wall = min(wall, time.perf_counter() - start)
    if progress is not None:
        progress("  leg %-10s %6.2fs  %2d traces  %2d sims"
                 % (leg, wall, traces, simulated))
    entry = {
        "description": _LEG_DESCRIPTIONS[leg],
        "wall_seconds": round(wall, 6),
        "functional_traces": traces,
        "traces_loaded": loaded,
        "simulations": simulated,
    }
    if leg == "batched":
        entry["precomputes_built"] = pre_built
        entry["precomputes_loaded"] = pre_loaded
    return entry, ipc


# -- ledger overhead probe ---------------------------------------------------


def measure_ledger_overhead(scale: Optional[float], store_root: Path,
                            repeats: int = 3) -> Dict[str, object]:
    """Wall cost of recording a sweep ledger on the warm batched matrix.

    Runs the full point matrix through ``run_batch`` against warm trace
    and precompute stores (result cache off, so every point simulates),
    best-of-``repeats`` with no ledger and again with a live
    :class:`~repro.obs.ledger.JsonlLedger`, alternating legs within each
    pass so machine drift hits both equally.  This is the acceptance
    probe for the NullLedger's zero-overhead contract *and* for the
    enabled writer staying in the noise.
    """
    from ..obs.ledger import JsonlLedger
    from .parallel import spec_point

    points = [spec_point(workload, spec)
              for workload, spec in bench_points()]
    plain_wall = ledger_wall = float("inf")
    spans = 0
    with tempfile.TemporaryDirectory(prefix="repro-ledgerbench-") as tmp:
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            _leg_runner(scale, store_root, None).run_batch(points)
            plain_wall = min(plain_wall, time.perf_counter() - start)

            sink = JsonlLedger(Path(tmp) / "bench.jsonl", command="bench")
            start = time.perf_counter()
            runner = _leg_runner(scale, store_root, None)
            runner.ledger = sink
            runner.run_batch(points)
            ledger_wall = min(ledger_wall, time.perf_counter() - start)
            sink.close()
            spans = sink.spans
    overhead = 100.0 * (ledger_wall - plain_wall) / plain_wall
    return {
        "points": len(points),
        "repeats": repeats,
        "plain_seconds": round(plain_wall, 6),
        "ledger_seconds": round(ledger_wall, 6),
        "overhead_percent": round(overhead, 2),
        "spans": spans,
    }


# -- RSS probe ---------------------------------------------------------------


def _rss_probe_child(conn, mode: str, scale: Optional[float],
                     store_root: Optional[str]) -> None:
    """Simulate one (mcf, dmdp) point and report this process's peak RSS.

    ``legacy`` holds the full ``List[TraceEntry]`` (one Python object per
    dynamic instruction); ``packed`` maps the store's columnar blob.
    """
    import resource
    try:
        if mode == "legacy":
            _run_point_legacy("mcf", ConfigSpec.create(ModelKind.DMDP),
                              scale)
        else:
            runner = _leg_runner(scale, Path(store_root), None)
            runner.run("mcf", ModelKind.DMDP)
            if runner.traces_generated:
                conn.send(("error", "probe store was not warm"))
                return
        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        conn.send(("ok", rss_kb))
    except Exception as exc:     # pragma: no cover - surfaced to parent
        conn.send(("error", repr(exc)))
    finally:
        conn.close()


def measure_rss(scale: Optional[float],
                store_root: Path) -> Dict[str, object]:
    """Peak worker RSS, list-trace vs. packed-trace, via forked children.

    Forking one child per mode gives each a clean address space, so
    ``ru_maxrss`` reflects only that mode's trace representation.  The
    packed child expects ``store_root`` to already hold mcf's trace at
    ``scale`` (it asserts zero functional traces).
    """
    out: Dict[str, object] = {"probe_scale": scale,
                              "point": "mcf/dmdp"}
    for mode in ("legacy", "packed"):
        recv, send = multiprocessing.Pipe(duplex=False)
        proc = multiprocessing.Process(
            target=_rss_probe_child,
            args=(send, mode, scale, str(store_root)), daemon=True)
        proc.start()
        send.close()
        try:
            status, payload = recv.recv()
        except EOFError:
            status, payload = "error", "probe child died"
        recv.close()
        proc.join()
        if status != "ok":
            out["error"] = "%s probe: %s" % (mode, payload)
            return out
        out["%s_max_rss_kb" % mode] = payload
    legacy = out["legacy_max_rss_kb"]
    packed = out["packed_max_rss_kb"]
    out["drop_kb"] = legacy - packed
    out["drop_percent"] = round(100.0 * (legacy - packed) / legacy, 1)
    return out


# -- driver ------------------------------------------------------------------


def run_benchmark(smoke: bool = False, scale: Optional[float] = None,
                  repeats: int = 3, progress=None) -> Dict[str, object]:
    """Run all four legs + the RSS probe; returns the report payload.

    Stores live in a temporary directory, so the benchmark never touches
    (or is contaminated by) the user's ``.repro-cache``.  Every leg
    except ``cold`` (which by definition runs against empty stores and
    would be warm on a second pass) is timed best-of-``repeats``.
    """
    if scale is None:
        scale = SMOKE_SCALE if smoke else None
    points = bench_points()
    payload: Dict[str, object] = {
        "schema": SCHEMA,
        "benchmark": "sweep",
        "mode": "smoke" if smoke else "full",
        "scale": scale,
        "workloads": list(BENCH_WORKLOADS),
        "models": [model.value for model in BENCH_MODELS],
        # Per-model setting combinations (one entry per grid row; the
        # default combination canonicalises to {}), plus the declared
        # grid itself for provenance.
        "configs": [spec.setting_dict() for spec in BENCH_GRID.expand()
                    if spec.model is BENCH_MODELS[0]],
        "grid": BENCH_GRID.describe(),
        "points": len(points),
        "repeats": repeats,
        "calibration_seconds": round(calibrate(), 6),
    }

    with tempfile.TemporaryDirectory(prefix="repro-sweepbench-") as tmp:
        store_root = Path(tmp) / "traces"
        cache_root = Path(tmp) / "results"
        legs: Dict[str, dict] = {}
        ipc_by_leg: Dict[str, dict] = {}
        # Leg order matters: ``cold`` populates the stores that
        # ``warm_store``, ``batched``, and ``warm`` then reuse.  The
        # precompute store is warmed untimed before the batched leg (the
        # per-point legs never touch it), so every timed batched pass
        # loads its bundles the way a resumed sweep would.
        for leg, roots in (("legacy", (None, None)),
                           ("cold", (store_root, cache_root)),
                           ("warm_store", (store_root, None)),
                           ("batched", (store_root, None)),
                           ("warm", (store_root, cache_root))):
            if leg == "batched":
                warmer = _leg_runner(scale, store_root, None)
                for workload in BENCH_WORKLOADS:
                    warmer.ensure_precompute(workload)
            legs[leg], ipc_by_leg[leg] = _run_leg(
                leg, scale, roots[0], roots[1],
                repeats=1 if leg == "cold" else repeats,
                progress=progress)
        payload["legs"] = legs
        payload["stats_consistent"] = all(
            ipc_by_leg[leg] == ipc_by_leg["legacy"]
            for leg in ("cold", "warm_store", "batched", "warm"))

        legacy_wall = legs["legacy"]["wall_seconds"]
        payload["speedups"] = {
            leg: round(legacy_wall / legs[leg]["wall_seconds"], 2)
            for leg in ("cold", "warm_store", "batched", "warm")}
        payload["batched_vs_warm_store"] = round(
            legs["warm_store"]["wall_seconds"]
            / legs["batched"]["wall_seconds"], 3)

        # Ledger overhead probe against the now-warm stores (every point
        # still simulates; only the telemetry sink differs between legs).
        payload["ledger"] = measure_ledger_overhead(scale, store_root,
                                                    repeats=repeats)
        if progress is not None:
            progress("  ledger overhead %+.2f%% (%d spans)"
                     % (payload["ledger"]["overhead_percent"],
                        payload["ledger"]["spans"]))

        # RSS probe at its own (larger) scale: warm the store for it
        # first, so the packed child maps a blob instead of tracing.
        probe_scale = SMOKE_PROBE_SCALE if smoke else PROBE_SCALE
        _leg_runner(probe_scale, store_root, None).ensure_trace("mcf")
        payload["rss"] = measure_rss(probe_scale, store_root)
    return payload


def attach_check(payload: dict, check: bool = False,
                 min_warm: float = MIN_WARM_SPEEDUP,
                 min_warm_store: float = MIN_WARM_STORE_SPEEDUP,
                 min_batched: float = MIN_BATCHED_SPEEDUP,
                 max_ledger_overhead: float = MAX_LEDGER_OVERHEAD_PERCENT
                 ) -> dict:
    """Fold the pass/fail verdict into ``payload`` (mutates and returns).

    Unlike the hot-loop check this needs no committed baseline: every
    gate compares legs measured in the same session on the same machine,
    so the thresholds are machine-independent.
    """
    if not check:
        payload["check"] = {"enabled": False}
        return payload
    legs = payload["legs"]
    rss = payload["rss"]
    details = {
        "warm_store_zero_retraces": legs["warm_store"][
            "functional_traces"] == 0,
        "warm_zero_retraces": legs["warm"]["functional_traces"] == 0,
        "warm_zero_simulations": legs["warm"]["simulations"] == 0,
        "batched_zero_retraces": legs["batched"]["functional_traces"] == 0,
        # Exactly one precompute per distinct trace, all served from the
        # warm store: a rebuild would mean redundant whole-trace analysis.
        "batched_zero_redundant_precompute":
            legs["batched"]["precomputes_built"] == 0
            and legs["batched"]["precomputes_loaded"]
            == len(payload["workloads"]),
        "stats_consistent": bool(payload["stats_consistent"]),
        "warm_speedup_ok": payload["speedups"]["warm"] >= min_warm,
        "warm_store_speedup_ok":
            payload["speedups"]["warm_store"] >= min_warm_store,
        "batched_speedup_ok":
            payload["batched_vs_warm_store"] >= min_batched,
        "ledger_overhead_ok":
            payload["ledger"]["overhead_percent"] <= max_ledger_overhead,
        "rss_drop_ok": "error" not in rss and rss["drop_kb"] > 0,
    }
    payload["check"] = {
        "enabled": True,
        "passed": all(details.values()),
        "min_warm_speedup": min_warm,
        "min_warm_store_speedup": min_warm_store,
        "min_batched_speedup": min_batched,
        "max_ledger_overhead_percent": max_ledger_overhead,
        "details": details,
    }
    return payload


def format_report(payload: dict) -> str:
    """Human-readable summary of a benchmark payload."""
    lines = ["sweep benchmark (%s, %d points: %s x %s x %d configs)"
             % (payload["mode"], payload["points"],
                "/".join(payload["workloads"]),
                "/".join(payload["models"]), len(payload["configs"]))]
    for leg in ("legacy", "cold", "warm_store", "batched", "warm"):
        entry = payload["legs"][leg]
        lines.append("  %-10s %8.2fs  %2d traces  %2d sims"
                     % (leg, entry["wall_seconds"],
                        entry["functional_traces"], entry["simulations"]))
    speedups = payload["speedups"]
    lines.append("  speedup vs legacy: cold %.2fx  warm-store %.2fx  "
                 "batched %.2fx  warm %.2fx"
                 % (speedups["cold"], speedups["warm_store"],
                    speedups["batched"], speedups["warm"]))
    lines.append("  batched vs warm-store: %.2fx (%d precomputes loaded, "
                 "%d built)" % (payload["batched_vs_warm_store"],
                                payload["legs"]["batched"][
                                    "precomputes_loaded"],
                                payload["legs"]["batched"][
                                    "precomputes_built"]))
    ledger = payload.get("ledger")
    if ledger:
        lines.append("  ledger overhead: %.2fs plain -> %.2fs recorded "
                     "(%+.2f%%, %d spans)"
                     % (ledger["plain_seconds"], ledger["ledger_seconds"],
                        ledger["overhead_percent"], ledger["spans"]))
    rss = payload["rss"]
    if "error" in rss:
        lines.append("  rss probe failed: %s" % rss["error"])
    else:
        lines.append("  worker peak rss: %d KB list -> %d KB packed "
                     "(%.1f%% drop)" % (rss["legacy_max_rss_kb"],
                                        rss["packed_max_rss_kb"],
                                        rss["drop_percent"]))
    check = payload.get("check", {})
    if check.get("enabled"):
        lines.append("  check: %s" % ("PASS" if check["passed"] else
                                      "FAIL %r" % check["details"]))
    return "\n".join(lines)
