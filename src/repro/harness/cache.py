"""Persistent on-disk cache for simulation results.

Every (workload, iteration count, model, parameter overrides, code version)
point maps to a content-hash key; the :class:`SimResult` for that point is
pickled under ``<cache_dir>/<key[:2]>/<key>.pkl``.  A warm run therefore
skips tracing *and* simulation entirely, which is what makes repeated
pytest/benchmark sessions cheap (see DESIGN.md Section 8).

The code version folded into every key is a hash over the simulator's own
source tree (isa, kernel, uarch, workloads, energy), so editing anything
that could change simulation results silently invalidates old entries --
no manual cache management needed.  Harness/CLI files are deliberately
excluded: they orchestrate runs but cannot change a point's outcome.

Cache location: ``$REPRO_CACHE_DIR`` if set, else ``.repro-cache`` under
the current working directory.  Writes are atomic (tempfile + rename), so
concurrent pytest sessions can safely share one cache.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Optional

from ..kernel import precompute as precompute_mod
from ..kernel import tracestore

# Bump when the pickled payload layout changes incompatibly.
FORMAT_VERSION = 1

# Bump when the ConfigSpec canonical encoding (dotted keys, scalar
# coercion, default-dropping) changes incompatibly: every result key
# embeds the spec's canonical dict, so this versions the key vocabulary.
CONFIG_FORMAT_VERSION = 1

# Source packages whose content determines simulation results.
_VERSIONED_PACKAGES = ("isa", "kernel", "uarch", "workloads", "energy")

# The subset that determines the *functional* trace (no timing model):
# a uarch-only edit keeps every packed trace valid.
_FUNCTIONAL_PACKAGES = ("isa", "kernel", "workloads")

# The files whose content determines a precompute bundle (given a valid
# trace): the bundle builder itself and the branch predictor it replays.
_PRECOMPUTE_FILES = ("kernel/precompute.py", "uarch/branch.py")

_CODE_VERSION: Optional[str] = None
_FUNCTIONAL_VERSION: Optional[str] = None
_PRECOMPUTE_VERSION: Optional[str] = None


def _hash_packages(packages) -> str:
    digest = hashlib.sha256()
    package_root = Path(__file__).resolve().parent.parent
    for package in packages:
        for path in sorted((package_root / package).glob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def _hash_files(relative_paths) -> str:
    digest = hashlib.sha256()
    package_root = Path(__file__).resolve().parent.parent
    for rel in relative_paths:
        path = package_root / rel
        digest.update(rel.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def code_version() -> str:
    """Hash of every source file that can affect a simulation result."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        _CODE_VERSION = _hash_packages(_VERSIONED_PACKAGES)
    return _CODE_VERSION


def functional_version() -> str:
    """Hash of every source file that can affect a *functional trace*."""
    global _FUNCTIONAL_VERSION
    if _FUNCTIONAL_VERSION is None:
        _FUNCTIONAL_VERSION = _hash_packages(_FUNCTIONAL_PACKAGES)
    return _FUNCTIONAL_VERSION


def precompute_version() -> str:
    """Hash of the sources that can change a precompute bundle's tables."""
    global _PRECOMPUTE_VERSION
    if _PRECOMPUTE_VERSION is None:
        _PRECOMPUTE_VERSION = _hash_files(_PRECOMPUTE_FILES)
    return _PRECOMPUTE_VERSION


def canonical(value):
    """JSON-serialisable canonical form of a parameter override value.

    Handles the value types experiments actually pass: enums, (frozen)
    dataclasses such as :class:`PredictorParams`, containers, and scalars.
    """
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return [type(value).__name__,
                {f.name: canonical(getattr(value, f.name))
                 for f in dataclasses.fields(value)}]
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError("cannot canonicalise override of type %s"
                    % type(value).__name__)


def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


def default_ledger_dir() -> Path:
    """Where ``--ledger`` (no path) drops sweep ledgers: beside the
    result/trace entries they narrate, so one cache dir is the whole
    story of a machine's runs."""
    return default_cache_dir() / "ledgers"


class LedgerDir:
    """Maintenance view over the sweep-ledger directory.

    Ledgers are not content-addressed (each run writes a fresh file),
    but they share the cache tree's maintenance idiom: finalised
    ``*.jsonl`` files are the entries, and ``*.jsonl.tmp`` orphans --
    left by runs killed before :meth:`JsonlLedger.close` renamed them
    -- are swept by :meth:`gc` exactly like the stores' atomic-write
    temp files.
    """

    suffix = ".jsonl"

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_ledger_dir()

    # -- maintenance ---------------------------------------------------------

    def entries(self):
        return sorted(self.root.glob("*" + self.suffix))

    def entry_count(self) -> int:
        return len(self.entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def tmp_files(self):
        """Ledgers of runs that died before finalising (still ``.tmp``)."""
        return sorted(self.root.glob("*" + self.suffix + ".tmp"))

    def gc(self, min_age_seconds: float = 0.0) -> int:
        """Sweep ``*.jsonl.tmp`` ledgers orphaned by killed runs."""
        removed = 0
        now = time.time()
        for path in self.tmp_files():
            try:
                if now - path.stat().st_mtime >= min_age_seconds:
                    path.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def clear(self) -> int:
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.gc()
        return removed


class ResultCache:
    """Content-addressed pickle store for :class:`SimResult` objects."""

    def __init__(self, root: Optional[Path] = None,
                 version: Optional[str] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.version = version if version is not None else code_version()
        self.hits = 0
        self.misses = 0

    # -- keys --------------------------------------------------------------

    def key_for_spec(self, workload: str, iterations: int, spec) -> str:
        """Key for a :class:`~repro.config.ConfigSpec`-described point.

        The spec's canonical dict (model + default-dropped settings) is
        the sole configuration material, so any two constructions of the
        same parameters -- bare overrides, dotted ``--set`` flags, a grid
        expansion -- hit one entry.  ``config_format`` versions the spec
        vocabulary itself: bump it alongside CONFIG_FORMAT_VERSION when
        the canonical settings encoding changes incompatibly.
        """
        material = json.dumps({
            "format": FORMAT_VERSION,
            "config_format": CONFIG_FORMAT_VERSION,
            # Results are simulated *from* an encoded trace, so a trace
            # format bump conservatively invalidates them too (instead of
            # ever trusting stats derived from a mis-decoded blob).
            "trace_format": tracestore.TRACE_FORMAT_VERSION,
            "code": self.version,
            "workload": workload,
            "iterations": iterations,
            "spec": spec.to_dict(),
        }, sort_keys=True)
        return hashlib.sha256(material.encode()).hexdigest()

    def key_for(self, workload: str, iterations: int, model,
                overrides: dict) -> str:
        """Legacy overrides-dict key surface; derives the key from the
        equivalent ConfigSpec so both entry points share one entry."""
        from ..config import ConfigSpec
        spec = ConfigSpec.from_overrides(model, **overrides)
        return self.key_for_spec(workload, iterations, spec)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / (key + ".pkl")

    # -- storage ------------------------------------------------------------

    def get(self, key: str):
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except Exception:
            # Any unreadable entry -- truncated pickle, garbage bytes,
            # a payload whose class/module no longer exists -- is a
            # clean miss; the next put() overwrites (repairs) it.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: concurrent sessions never observe partial files.
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- maintenance ----------------------------------------------------------

    def entries(self):
        return sorted(self.root.glob("??/*.pkl"))

    def entry_count(self) -> int:
        return len(self.entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass    # deleted by a concurrent session between glob+stat
        return total

    def tmp_files(self):
        """In-flight (or orphaned) atomic-write temp files."""
        return sorted(self.root.glob("??/*.tmp"))

    def gc(self, min_age_seconds: float = 0.0) -> int:
        """Sweep ``*.tmp`` files orphaned by killed sessions.

        A live writer holds its temp file only for the duration of one
        ``pickle.dump`` + rename, so anything older than
        ``min_age_seconds`` (default: everything) is an orphan from a
        session that died mid-put.  Returns the number removed.
        """
        removed = 0
        now = time.time()
        for path in self.tmp_files():
            try:
                if now - path.stat().st_mtime >= min_age_seconds:
                    path.unlink()
                    removed += 1
            except OSError:
                pass    # vanished (or swept by a concurrent gc)
        return removed

    def clear(self) -> int:
        """Delete every cached result (and sweep orphaned temp files);
        returns the number of results removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.gc()
        return removed


class TraceStore:
    """Persistent store of packed functional traces (DESIGN.md section 12).

    One blob per (workload, iterations, functional-semantics version,
    trace format version) under ``<cache_root>/traces/<key[:2]>/<key>.trc``.
    The key hashes only the *functional* sources (isa, kernel, workloads):
    timing-model edits keep traces valid, while any edit that could change
    what the functional CPU retires silently invalidates them.  Blobs are
    written atomically and loaded read-only via ``mmap``, so every sweep
    worker shares one page-cache copy; any unreadable/mismatched blob is
    a clean miss, repaired by the next put.
    """

    def __init__(self, root: Optional[Path] = None,
                 version: Optional[str] = None):
        if root is not None:
            self.root = Path(root)
        else:
            self.root = default_cache_dir() / "traces"
        self.version = (version if version is not None
                        else functional_version())
        self.hits = 0
        self.misses = 0

    # -- keys --------------------------------------------------------------

    def key_for(self, workload: str, iterations: int) -> str:
        material = json.dumps({
            "trace_format": tracestore.TRACE_FORMAT_VERSION,
            "functional": self.version,
            "workload": workload,
            "iterations": iterations,
        }, sort_keys=True)
        return hashlib.sha256(material.encode()).hexdigest()

    def path_for(self, workload: str, iterations: int) -> Path:
        key = self.key_for(workload, iterations)
        return self.root / key[:2] / (key + ".trc")

    # -- storage ------------------------------------------------------------

    def load(self, workload: str, iterations: int, program):
        """The packed trace for a point, or None (miss) -- never raises."""
        path = self.path_for(workload, iterations)
        try:
            packed = tracestore.load_trace(path, program)
        except Exception:
            # Missing, truncated, garbage, format-bumped, or packed for a
            # different program: a clean miss; the next put repairs it.
            self.misses += 1
            return None
        self.hits += 1
        return packed

    def put(self, workload: str, iterations: int, packed) -> Optional[Path]:
        """Atomically persist a trace; returns its path."""
        packed = tracestore.pack_trace(packed.program, packed)
        path = self.path_for(workload, iterations)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(packed.to_bytes())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- maintenance ---------------------------------------------------------

    def entries(self):
        return sorted(self.root.glob("??/*.trc"))

    def entry_count(self) -> int:
        return len(self.entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def tmp_files(self):
        return sorted(self.root.glob("??/*.tmp"))

    def gc(self, min_age_seconds: float = 0.0) -> int:
        """Sweep ``*.tmp`` blobs orphaned by killed sessions."""
        removed = 0
        now = time.time()
        for path in self.tmp_files():
            try:
                if now - path.stat().st_mtime >= min_age_seconds:
                    path.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def clear(self) -> int:
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.gc()
        return removed


class PrecomputeStore:
    """Persistent store of whole-trace precompute bundles (DESIGN.md §14).

    One ``.pre`` blob per (workload, iterations, predictor signature,
    functional/trace-format/precompute versions) living in the *same*
    ``traces/`` tree as the ``.trc`` blobs it annotates, so cache info,
    gc, and clear naturally manage them together.  The key folds
    everything that can change the tables: the trace identity material
    (a bundle is meaningless without its trace) plus
    ``PRECOMPUTE_FORMAT_VERSION`` and a hash of the precompute/branch
    sources, so editing the predictor silently invalidates stale
    bundles.  Blobs are CRC'd, written atomically, loaded read-only via
    ``mmap``, and any unreadable/mismatched blob is a clean miss.
    """

    suffix = ".pre"

    def __init__(self, root: Optional[Path] = None,
                 version: Optional[str] = None):
        if root is not None:
            self.root = Path(root)
        else:
            self.root = default_cache_dir() / "traces"
        self.functional = (version if version is not None
                           else functional_version())
        self.version = precompute_version()
        self.hits = 0
        self.misses = 0

    # -- keys --------------------------------------------------------------

    def key_for(self, workload: str, iterations: int, signature) -> str:
        material = json.dumps({
            "trace_format": tracestore.TRACE_FORMAT_VERSION,
            "precompute_format": precompute_mod.PRECOMPUTE_FORMAT_VERSION,
            "functional": self.functional,
            "precompute": self.version,
            "workload": workload,
            "iterations": iterations,
            "signature": list(signature),
        }, sort_keys=True)
        return hashlib.sha256(material.encode()).hexdigest()

    def path_for(self, workload: str, iterations: int, signature) -> Path:
        key = self.key_for(workload, iterations, signature)
        return self.root / key[:2] / (key + self.suffix)

    # -- storage ------------------------------------------------------------

    def load(self, workload: str, iterations: int, trace, signature):
        """The bundle for a (point, trace) pair, or None -- never raises."""
        path = self.path_for(workload, iterations, signature)
        try:
            bundle = precompute_mod.load_precompute(path, trace, signature)
        except Exception:
            # Missing, truncated, garbage, format-bumped, or built for a
            # different trace: a clean miss; the next put repairs it.
            self.misses += 1
            return None
        self.hits += 1
        return bundle

    def put(self, workload: str, iterations: int, bundle) -> Optional[Path]:
        """Atomically persist a bundle; returns its path."""
        path = self.path_for(workload, iterations, bundle.signature)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(bundle.to_bytes())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- maintenance ---------------------------------------------------------
    # Temp files in the shared traces/ tree are swept by TraceStore.gc
    # (one sweep covers both blob kinds), so there is no gc() here.

    def entries(self):
        return sorted(self.root.glob("??/*" + self.suffix))

    def entry_count(self) -> int:
        return len(self.entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


class NullPrecomputeStore:
    """Precompute-store stand-in that persists nothing (``--no-cache``)."""

    root = None
    hits = 0
    misses = 0

    def key_for(self, workload, iterations, signature) -> str:
        return ""

    def path_for(self, workload, iterations, signature):
        return None

    def load(self, workload, iterations, trace, signature):
        return None

    def put(self, workload, iterations, bundle):
        return None

    def entries(self):
        return []

    def entry_count(self) -> int:
        return 0

    def size_bytes(self) -> int:
        return 0

    def clear(self) -> int:
        return 0


class NullTraceStore:
    """Trace-store stand-in that persists nothing (``--no-cache``)."""

    root = None
    hits = 0
    misses = 0

    def key_for(self, workload, iterations) -> str:
        return ""

    def path_for(self, workload, iterations):
        return None

    def load(self, workload, iterations, program):
        return None

    def put(self, workload, iterations, packed):
        return None

    def entries(self):
        return []

    def entry_count(self) -> int:
        return 0

    def size_bytes(self) -> int:
        return 0

    def tmp_files(self):
        return []

    def gc(self, min_age_seconds: float = 0.0) -> int:
        return 0

    def clear(self) -> int:
        return 0


class NullCache:
    """Cache stand-in that stores nothing (``--no-cache``)."""

    root = None
    hits = 0
    misses = 0

    def key_for(self, workload, iterations, model, overrides) -> str:
        return ""

    def key_for_spec(self, workload, iterations, spec) -> str:
        return ""

    def get(self, key):
        return None

    def put(self, key, result) -> None:
        pass

    def entry_count(self) -> int:
        return 0

    def size_bytes(self) -> int:
        return 0

    def tmp_files(self):
        return []

    def gc(self, min_age_seconds: float = 0.0) -> int:
        return 0

    def clear(self) -> int:
        return 0
