"""Hot-loop throughput benchmark: simulated cycles per wall-clock second.

Every figure/table sweep ultimately bottlenecks on ``Simulator.run()`` --
one Python-interpreted cycle loop per (workload, model) point.  This module
measures that loop's throughput directly (trace construction excluded) so
performance work on the pipeline is a tracked artifact, not a claim:

* :func:`run_benchmark` times a fixed workload set under every model and
  returns a JSON-ready payload (``BENCH_hotloop.json``);
* :func:`measure_batched` times the multi-config ``batched`` leg: every
  model/config pair simulated against one shared
  :class:`~repro.kernel.precompute.TracePrecompute` bundle (bundle build
  included) vs. fresh per-config Simulator construction, with SimStats
  asserted byte-identical between the two;
* :func:`calibrate` times a deterministic pure-Python kernel whose speed
  scales with the host interpreter, so throughput numbers recorded on one
  machine can be compared on another (CI runners vs. the machine that
  committed the baseline);
* :func:`attach_baseline` folds the committed baseline
  (``benchmarks/results/BENCH_hotloop_baseline.json``) into a payload:
  speedups vs. the pre-optimisation "before" numbers and an optional
  regression check against the "after" reference.

The regression check compares calibration-normalised throughput: the
expected cycles/sec on *this* machine is the baseline cycles/sec scaled by
(baseline calibration time / this machine's calibration time).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from ..config import SpecGrid
from ..kernel import FunctionalCpu
from ..kernel.trace import MAX_TRACE_INSTRUCTIONS
from ..uarch import ModelKind, model_params
from ..uarch.pipeline import Simulator
from ..workloads import get_workload

SCHEMA = 1

# Long memory-bound runs are the wall-clock floor of the paper sweeps
# (Fig. 12, Tables 4-7); they are what the hot loop is optimised for.
BENCH_WORKLOADS = ("mcf", "lbm")

# Scale used by ``--smoke`` (CI): same workloads, quarter iteration count.
SMOKE_SCALE = 0.25

# A smoke run fails CI when it is slower than this fraction of the
# calibration-normalised committed reference.
REGRESSION_THRESHOLD = 0.7

# The batched leg must beat fresh per-config construction by at least
# this much on whole-run wall time.  The bench excludes harness/store
# amortisation (program build, trace load) on purpose -- it isolates the
# Simulator-level win, so the floor is modest; the sweep benchmark's
# MIN_BATCHED_SPEEDUP gates the full per-trace-grouped scheduling win.
MIN_BATCHED_SPEEDUP = 1.05

# Model/config cross-product simulated back-to-back by the batched leg,
# declared as a spec grid (the default 16-entry store buffer drops to an
# empty spec; 8 entries is the second combination per model).
BATCH_GRID = SpecGrid.create(tuple(ModelKind),
                             {"core.store_buffer_entries": [16, 8]})

DEFAULT_BASELINE_PATH = (Path(__file__).resolve().parents[3] / "benchmarks"
                         / "results" / "BENCH_hotloop_baseline.json")


def calibrate(repeats: int = 3, loops: int = 120_000) -> float:
    """Best-of-``repeats`` seconds for a fixed pure-Python kernel.

    The kernel mixes dict, attribute, integer, and list traffic in rough
    proportion to the simulator's own hot loop, so its runtime tracks
    interpreter speed on the operations that matter.
    """

    class _Probe:
        __slots__ = ("a", "b")

        def __init__(self) -> None:
            self.a = 0
            self.b = 1

    best = float("inf")
    for _ in range(repeats):
        probe = _Probe()
        table: Dict[int, int] = {}
        heap: List[int] = []
        start = time.perf_counter()
        for i in range(loops):
            key = i & 1023
            table[key] = i
            probe.a = probe.a + table[key]
            probe.b = (probe.b * 3 + 1) & 0xFFFF
            if key & 63 == 0:
                heap.append(i)
                if len(heap) > 64:
                    heap.pop(0)
        best = min(best, time.perf_counter() - start)
    return best


def _iterations(workload: str, scale: Optional[float]) -> int:
    spec = get_workload(workload)
    if scale is None:
        return spec.default_scale
    return max(1, int(round(spec.default_scale * scale)))


def measure(workloads: Iterable[str] = BENCH_WORKLOADS,
            models: Optional[Iterable[ModelKind]] = None,
            scale: Optional[float] = None, repeats: int = 1,
            progress=None) -> Dict[str, Dict[str, float]]:
    """Per-model throughput over ``workloads`` (traces built once, shared).

    Returns ``{model: {"cycles": int, "seconds": float,
    "cycles_per_sec": float}}`` where ``seconds`` is the best-of-``repeats``
    wall time summed over the workload set.
    """
    models = list(models) if models is not None else list(ModelKind)
    prepared = []
    for name in workloads:
        program = get_workload(name).build(_iterations(name, scale))
        trace = FunctionalCpu(program).run_trace(
            max_instructions=MAX_TRACE_INSTRUCTIONS)
        prepared.append((name, program, trace))

    out: Dict[str, Dict[str, float]] = {}
    for model in models:
        params = model_params(model)
        total_cycles = 0
        total_seconds = 0.0
        for name, program, trace in prepared:
            best = float("inf")
            cycles = 0
            for _ in range(max(1, repeats)):
                sim = Simulator(program, trace, params)
                start = time.perf_counter()
                stats = sim.run()
                best = min(best, time.perf_counter() - start)
                cycles = stats.cycles
            total_cycles += cycles
            total_seconds += best
            if progress is not None:
                progress("  %-8s %-8s %8d cycles  %.3fs"
                         % (name, model.value, cycles, best))
        out[model.value] = {
            "cycles": total_cycles,
            "seconds": round(total_seconds, 6),
            "cycles_per_sec": round(total_cycles / total_seconds, 1),
        }
    return out


def measure_batched(workloads: Iterable[str] = BENCH_WORKLOADS,
                    scale: Optional[float] = None, repeats: int = 1,
                    progress=None) -> Dict[str, object]:
    """Time the model/config cross-product per trace, batched vs. not.

    The *unbatched* leg constructs a fresh ``Simulator`` for every
    (model, config) pair -- each one re-deriving branch outcomes,
    history, decode templates, and the memory image from the packed
    trace.  The *batched* leg analyses the trace once into a
    :class:`~repro.kernel.precompute.TracePrecompute` bundle (build time
    charged to the leg) and shares it across all pairs, the way
    ``run_batch`` schedules a sweep.  SimStats must be byte-identical
    between legs; ``stats_identical`` records the comparison.
    """
    from ..kernel.tracestore import run_trace_packed
    from ..kernel.precompute import TracePrecompute, bpred_signature

    out: Dict[str, object] = {"workloads": {}, "configs_per_trace":
                              len(BATCH_GRID)}
    total_unbatched = 0.0
    total_batched = 0.0
    identical = True
    for name in workloads:
        program = get_workload(name).build(_iterations(name, scale))
        packed = run_trace_packed(program)
        matrix = BATCH_GRID.expand()

        best_unbatched = float("inf")
        unbatched_stats = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            stats = [Simulator(program, packed, spec.to_params()).run()
                     for spec in matrix]
            elapsed = time.perf_counter() - start
            if elapsed < best_unbatched:
                best_unbatched = elapsed
                unbatched_stats = stats

        best_batched = float("inf")
        batched_stats = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            pre = TracePrecompute.build(
                packed, bpred_signature(model_params(ModelKind.BASELINE)))
            cached = pre.cached_trace()
            stats = [Simulator(program, cached, spec.to_params(),
                               precompute=pre).run()
                     for spec in matrix]
            elapsed = time.perf_counter() - start
            if elapsed < best_batched:
                best_batched = elapsed
                batched_stats = stats

        same = all(a.to_dict() == b.to_dict()
                   for a, b in zip(unbatched_stats, batched_stats))
        identical = identical and same
        speedup = best_unbatched / best_batched if best_batched else 0.0
        out["workloads"][name] = {
            "unbatched_seconds": round(best_unbatched, 6),
            "batched_seconds": round(best_batched, 6),
            "speedup": round(speedup, 3),
            "stats_identical": same,
        }
        total_unbatched += best_unbatched
        total_batched += best_batched
        if progress is not None:
            progress("  %-8s batched  %.3fs vs %.3fs  (%.2fx)%s"
                     % (name, best_batched, best_unbatched, speedup,
                        "" if same else "  STATS MISMATCH"))
    out["unbatched_seconds"] = round(total_unbatched, 6)
    out["batched_seconds"] = round(total_batched, 6)
    out["speedup"] = round(total_unbatched / total_batched, 3) \
        if total_batched else 0.0
    out["stats_identical"] = identical
    return out


def run_benchmark(smoke: bool = False, repeats: int = 1,
                  progress=None) -> Dict[str, object]:
    """Measure the standard configuration and return the report payload."""
    scale = SMOKE_SCALE if smoke else None
    return {
        "schema": SCHEMA,
        "mode": "smoke" if smoke else "full",
        "workloads": list(BENCH_WORKLOADS),
        "scale": scale,
        "calibration_seconds": round(calibrate(), 6),
        "models": measure(scale=scale, repeats=repeats, progress=progress),
        "batched": measure_batched(scale=scale, repeats=repeats,
                                   progress=progress),
    }


# -- baseline bookkeeping ----------------------------------------------------


def load_baseline(path: Optional[Path] = None) -> Optional[dict]:
    path = Path(path) if path is not None else DEFAULT_BASELINE_PATH
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def save_baseline(baseline: dict, path: Optional[Path] = None) -> Path:
    path = Path(path) if path is not None else DEFAULT_BASELINE_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def update_baseline(payload: dict, stage: str,
                    path: Optional[Path] = None) -> Path:
    """Record ``payload`` as the ``stage`` ("before"/"after") reference for
    its mode ("full"/"smoke") in the committed baseline file."""
    baseline = load_baseline(path) or {"schema": SCHEMA,
                                       "workloads": payload["workloads"],
                                       "modes": {}}
    mode = baseline["modes"].setdefault(
        payload["mode"], {"scale": payload["scale"]})
    mode[stage] = {
        "calibration_seconds": payload["calibration_seconds"],
        "cycles_per_sec": {name: entry["cycles_per_sec"]
                           for name, entry in payload["models"].items()},
    }
    return save_baseline(baseline, path)


def attach_baseline(payload: dict, baseline: Optional[dict],
                    check: bool = False,
                    threshold: float = REGRESSION_THRESHOLD) -> dict:
    """Fold the committed baseline into ``payload`` (mutates and returns it).

    Adds ``speedup_vs_before`` (calibration-normalised, per model) when the
    baseline has pre-optimisation numbers for this mode, and -- when
    ``check`` is set -- a pass/fail regression verdict against the "after"
    reference (falling back to "before" when no "after" exists yet).
    """
    mode = (baseline or {}).get("modes", {}).get(payload["mode"], {})
    payload["baseline"] = mode or None

    before = mode.get("before")
    if before:
        norm = before["calibration_seconds"] / payload["calibration_seconds"]
        payload["speedup_vs_before"] = {
            name: round(entry["cycles_per_sec"]
                        / (before["cycles_per_sec"][name] * norm), 2)
            for name, entry in payload["models"].items()
            if name in before["cycles_per_sec"]
        }
    else:
        payload["speedup_vs_before"] = None

    if not check:
        payload["check"] = {"enabled": False}
        return payload

    details = {}
    passed = True

    # Batched-leg gates are self-relative (both legs ran on this host),
    # so they apply even without a committed baseline: the shared-bundle
    # path must beat fresh per-config construction and must not change a
    # single statistic.
    batched = payload.get("batched")
    if batched is not None:
        batched_ok = batched["speedup"] >= MIN_BATCHED_SPEEDUP
        identical = bool(batched["stats_identical"])
        passed = passed and batched_ok and identical
        details["batched"] = {
            "speedup": batched["speedup"],
            "min_speedup": MIN_BATCHED_SPEEDUP,
            "stats_identical": identical,
            "ok": batched_ok and identical,
        }

    reference = mode.get("after") or before
    if not reference:
        payload["check"] = {"enabled": True, "passed": passed,
                            "details": details,
                            "reason": "no committed baseline for mode %r"
                                      % payload["mode"]}
        return payload
    norm = reference["calibration_seconds"] / payload["calibration_seconds"]
    for name, entry in payload["models"].items():
        expected = reference["cycles_per_sec"].get(name)
        if expected is None:
            continue
        expected_here = expected * norm
        ratio = entry["cycles_per_sec"] / expected_here
        ok = ratio >= threshold
        passed = passed and ok
        details[name] = {"expected_cycles_per_sec": round(expected_here, 1),
                         "ratio": round(ratio, 3), "ok": ok}
    payload["check"] = {"enabled": True, "passed": passed,
                        "threshold": threshold, "details": details}
    return payload


def write_report(payload: dict, path: Path) -> Path:
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path
