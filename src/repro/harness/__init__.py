"""Experiment harness: runner, cache, parallel engine, reproductions."""

from .cache import (LedgerDir, NullCache, NullPrecomputeStore,
                    NullTraceStore, PrecomputeStore, ResultCache,
                    TraceStore, code_version, default_cache_dir,
                    default_ledger_dir, functional_version,
                    precompute_version)
from .resilience import (BatchFailure, FailedPoint, FaultInjector,
                         RetryPolicy, parse_fault_spec)
from .parallel import (BatchTiming, ParallelEngine, PointTiming, SimPoint,
                       make_point, spec_point)
from .runner import ExperimentRunner, SimResult, shared_runner
from .reporting import (format_failure_table, format_point_log,
                        format_run_report, format_table, geomean, percent,
                        shape_check, speedup)
from .experiments import ALL_EXPERIMENTS, ExperimentResult
from . import hotloop, paper_data, sweepbench

__all__ = [
    "ExperimentRunner", "SimResult", "shared_runner",
    "LedgerDir", "NullCache", "NullPrecomputeStore", "NullTraceStore",
    "PrecomputeStore", "ResultCache", "TraceStore",
    "code_version", "default_cache_dir", "default_ledger_dir",
    "functional_version", "precompute_version",
    "BatchFailure", "FailedPoint", "FaultInjector", "RetryPolicy",
    "parse_fault_spec",
    "BatchTiming", "ParallelEngine", "PointTiming", "SimPoint", "make_point",
    "spec_point",
    "format_failure_table", "format_point_log", "format_run_report",
    "format_table", "geomean", "percent", "shape_check", "speedup",
    "ALL_EXPERIMENTS", "ExperimentResult", "hotloop", "paper_data",
    "sweepbench",
]
