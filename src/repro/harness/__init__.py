"""Experiment harness: runner, figure/table reproductions, reporting."""

from .runner import ExperimentRunner, SimResult, shared_runner
from .reporting import format_table, geomean, percent, shape_check, speedup
from .experiments import ALL_EXPERIMENTS, ExperimentResult
from . import paper_data

__all__ = [
    "ExperimentRunner", "SimResult", "shared_runner",
    "format_table", "geomean", "percent", "shape_check", "speedup",
    "ALL_EXPERIMENTS", "ExperimentResult", "paper_data",
]
