"""Formatting and aggregation helpers for experiment reports.

The benchmark harness prints every reproduced figure/table as an ASCII
table with a ``paper`` column next to the ``measured`` one wherever the
paper gives a number (EXPERIMENTS.md is generated from the same data).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from .parallel import BatchTiming, PointTiming
from .resilience import FailedPoint


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for speedups)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(new: float, old: float) -> float:
    return new / old if old else 0.0


def percent(ratio: float) -> float:
    """1.0717 -> 7.17 (percentage points of improvement)."""
    return 100.0 * (ratio - 1.0)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None,
                 float_fmt: str = "%.3f") -> str:
    """Render an ASCII table.

    Tolerant of messy experiment data: ragged rows are padded (or the
    header row widened) to the widest row, ``None`` renders as ``-``, and
    non-numeric cells fall back to ``str``.
    """
    def render(cell):
        if cell is None:
            return "-"
        if isinstance(cell, bool):  # bool is an int; keep True/False
            return str(cell)
        if isinstance(cell, float):
            try:
                return float_fmt % cell
            except (TypeError, ValueError):
                return str(cell)
        return str(cell)

    headers = [render(h) for h in headers]
    text_rows = [[render(c) for c in row] for row in rows]
    ncols = max([len(headers)] + [len(r) for r in text_rows])
    headers = headers + [""] * (ncols - len(headers))
    text_rows = [row + ["-"] * (ncols - len(row)) for row in text_rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def suite_geomeans(per_workload: Dict[str, float],
                   int_names: Sequence[str],
                   fp_names: Sequence[str]) -> Dict[str, float]:
    """Geometric means over the INT and FP suites."""
    return {
        "int": geomean([per_workload[n] for n in int_names
                        if n in per_workload]),
        "fp": geomean([per_workload[n] for n in fp_names
                       if n in per_workload]),
    }


def format_point_log(points: Sequence[PointTiming],
                     limit: Optional[int] = None) -> str:
    """Per-point wall-clock table: what was simulated vs cache-hit."""
    rows = [[p.workload, p.model.value, p.source, "%.3f" % p.seconds]
            for p in (points if limit is None else points[-limit:])]
    return format_table(["workload", "model", "source", "seconds"], rows,
                        title="Per-point timing")


def format_run_report(points: Sequence[PointTiming],
                      batches: Sequence[BatchTiming] = ()) -> str:
    """Aggregate progress/speedup summary for one runner's session.

    Reports points simulated vs served from the persistent cache, the
    wall-clock spent in each bucket, and -- when batches ran with worker
    fan-out -- the aggregate parallel speedup (serial simulation seconds
    over batch wall-clock).
    """
    points = list(points or ())
    batches = list(batches or ())
    simulated = [p for p in points if p.source == "sim"]
    cached = [p for p in points if p.source == "cache"]
    if not points:
        return "no points resolved"
    lines = [
        "points simulated      %d (%.2fs)"
        % (len(simulated), sum(p.seconds for p in simulated)),
        "points from cache     %d (%.2fs)"
        % (len(cached), sum(p.seconds for p in cached)),
    ]
    fanout = [b for b in batches if b.simulated and b.jobs > 1]
    if fanout:
        sim_seconds = sum(b.sim_seconds for b in fanout)
        wall = sum(b.wall_seconds for b in fanout)
        lines.append("parallel batches      %d (jobs=%d)"
                     % (len(fanout), fanout[0].jobs))
        lines.append("aggregate speedup     %.2fx (%.2fs simulated in "
                     "%.2fs wall)" % (sim_seconds / wall if wall else 1.0,
                                      sim_seconds, wall))
    traced = sum(b.traces_generated for b in batches)
    retraced = sum(b.worker_retraces for b in batches)
    if traced or retraced:
        lines.append("functional traces     %d%s"
                     % (traced,
                        " (+%d worker re-traces)" % retraced
                        if retraced else ""))
    retried = sum(b.retried for b in batches)
    timed_out = sum(b.timed_out for b in batches)
    failed = sum(b.failed for b in batches)
    if retried or timed_out or failed:
        lines.append("task retries          %d (%d after timeout)"
                     % (retried, timed_out))
        lines.append("points failed         %d" % failed)
    return "\n".join(lines)


def format_failure_table(failures: Sequence[FailedPoint]) -> str:
    """Explicit per-point failure report (shown instead of a stack
    trace): which points were lost, how, and after how many attempts."""
    rows = [[f.point.workload, f.point.model.value, f.kind, f.attempts,
             f.reason[:60]] for f in failures]
    return format_table(["workload", "model", "kind", "attempts", "error"],
                        rows, title="Failed simulation points")


def shape_check(measured: float, paper: float,
                tolerance_sign_only: bool = True) -> str:
    """Qualitative agreement marker for EXPERIMENTS.md.

    The reproduction runs a different substrate on synthetic workloads, so
    the check is directional: do the measured and paper values agree in
    sign (who wins)?  '+' agreement, '-' disagreement, '~' both near zero.
    """
    if abs(measured) < 0.25 and abs(paper) < 0.25:
        return "~"
    if measured * paper > 0:
        return "+"
    return "-"
