"""Numbers reported in the paper, used for paper-vs-measured columns.

Every value below is transcribed from the paper text (Jin & Önder,
"Dynamic Memory Dependence Predication", ISCA 2018).  Values the paper only
shows as bar charts (Figs. 2, 3, 5, 12 per-benchmark, 14, 15) have no
per-benchmark entry here; their aggregate claims are captured in
``AGGREGATE_CLAIMS``.
"""

from __future__ import annotations

# Table IV: average execution time of all loads (cycles).
TABLE4_LOAD_EXEC_TIME = {
    # name: (baseline, dmdp)
    "perl": (15.86, 12.45), "bzip2": (36.67, 19.48),
    "gcc": (44.98, 35.04), "mcf": (112.44, 104.00),
    "gobmk": (13.51, 11.52), "hmmer": (11.20, 7.47),
    "sjeng": (12.60, 10.62), "lib": (125.23, 124.73),
    "h264ref": (22.68, 17.32), "astar": (21.18, 13.77),
    "bwaves": (42.56, 36.76), "milc": (73.40, 61.18),
    "zeusmp": (26.97, 21.21), "gromacs": (32.13, 11.41),
    "leslie3d": (36.55, 32.91), "namd": (20.22, 18.94),
    "Gems": (14.78, 11.62), "tonto": (20.31, 12.89),
    "lbm": (72.17, 31.15), "wrf": (18.17, 9.19),
    "sphinx3": (51.95, 50.47),
}
TABLE4_AVERAGE = (39.31, 31.15)

# Fig. 12 geometric-mean IPC normalised to the baseline.
FIG12_GEOMEAN_IPC = {
    # suite: (nosq, dmdp, perfect)
    "int": (0.975, 1.045, 1.068),
    "fp": (1.008, 1.053, 1.066),
}

AGGREGATE_CLAIMS = {
    # DMDP speedup over NoSQ (geomean, percent).
    "dmdp_over_nosq_int": 7.17,
    "dmdp_over_nosq_fp": 4.48,
    # IPC DMDP loses to Perfect (geomean, percent).
    "perfect_over_dmdp_int": 2.19,
    "perfect_over_dmdp_fp": 1.25,
    # Fig. 5: low-confidence misprediction rates.
    "naive_lowconf_mispredict_rate": 11.4,   # treat low-conf as independent
    "dmdp_lowconf_mispredict_rate": 3.7,
    "lbm_naive_rate": 28.6,
    "milc_naive_rate": 23.5,
    # Table V: DMDP low-confidence load execution-time saving vs NoSQ.
    "lowconf_exec_saving_avg": 54.48,        # percent
    "lowconf_exec_saving_max": 79.25,
    # hmmer anecdote (Section VI-a).
    "hmmer_mpki_nosq": 3.06,
    "hmmer_mpki_dmdp": 1.03,
    # wrf anecdote (Section VI-c): avg load exec time baseline/NoSQ/DMDP.
    "wrf_load_exec": (18.17, 13.85, 9.19),
    "wrf_insn_exec": (19.53, 21.47, 12.74),
    # Fig. 14: DMDP speedup of 32/64-entry SB over 16-entry (percent).
    "sb32_int": 2.07, "sb32_fp": 3.81,
    "sb64_int": 2.77, "sb64_fp": 5.01,
    # Store-buffer-full stalls per 1k instructions by SB size.
    "sb_full_stalls": {16: 503.1, 32: 220.5, 64: 75.0},
    # Fig. 15 / abstract: EDP saving of DMDP vs NoSQ (percent).
    "edp_saving_int": 8.5, "edp_saving_fp": 5.1,
    "edp_saving_overall": 6.7,
    # Section VI-f: register file pressure (DMDP gain over baseline).
    "regfile_320_gain": 4.94, "regfile_160_gain": 4.24,
    # Section VI-g: alternative configurations (DMDP over NoSQ, percent).
    "issue4_int": 4.56, "issue4_fp": 2.41,
    "rob512_int": 7.56, "rob512_fp": 6.35,
    "rmo_int": 7.67, "rmo_fp": 4.08,
    # 4-issue reduces low-confidence load population by 23.4%.
    "issue4_lowconf_drop": 23.4,
    # Section II: delayed loads execute ~7x longer than bypassing loads.
    "delayed_vs_bypass_ratio": 7.0,
    # mcf exception in Fig. 3 (delayed 117.6 vs bypassing 159.3 cycles).
    "mcf_delayed_cycles": 117.6, "mcf_bypass_cycles": 159.3,
    # Fig. 2: benchmarks with >10% delayed loads in NoSQ.
    "high_delay_benchmarks": ("bzip2", "gcc", "mcf", "hmmer",
                              "h264ref", "astar"),
    # Average load execution saving of DMDP vs baseline (Table IV, >20%).
    "load_exec_saving_vs_baseline": 20.0,
}
