"""Fault-tolerance primitives for the experiment harness.

Long figure/table sweeps (21 workloads x 4 models, plus ablations) are
exactly the campaigns where a single OOM-killed worker or a wedged
simulation used to abort the whole batch and discard every completed
point.  This module supplies the pieces the harness composes instead:

* :class:`RetryPolicy` -- per-task wall-clock timeout plus bounded
  retries with deterministic exponential backoff;
* :class:`FailedPoint` -- the durable record of one simulation point
  that exhausted its retries (captured traceback included), reported in
  a failure table instead of a raised stack trace;
* :class:`BatchFailure` -- the exception a non-``keep_going`` batch
  raises *after* publishing every completed point to the disk cache, so
  a re-run resumes instead of restarting;
* :class:`FaultInjector` -- a deterministic, environment-driven fault
  hook (``REPRO_FAULT_SPEC``) used by the resilience test suite and the
  CI fault-injection step to kill workers, raise inside tasks, sleep
  past the timeout, or refuse worker spawns on demand.

Fault spec grammar (semicolon-separated directives)::

    kill:workload=bzip2,once        # os._exit(17) in the worker
    raise:workload=tonto            # raise RuntimeError inside the task
    sleep:workload=mcf,seconds=30   # wedge the task past its timeout
    nospawn                         # worker processes refuse to start

``workload=*`` matches every task.  ``once`` arms the directive for a
single firing; cross-process state (a retried task lands in a *new*
worker) is kept as marker files under ``REPRO_FAULT_STATE_DIR`` when
set, else in-process only.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"
FAULT_STATE_ENV = "REPRO_FAULT_STATE_DIR"

# Exit code used by injected worker kills; distinctive in failure logs.
KILL_EXIT_CODE = 17


# -- retry policy -----------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry/backoff contract for one batch submission.

    ``timeout`` is the per-task wall-clock budget in seconds (None
    disables enforcement; serial in-process execution never enforces it
    because a cooperative simulator cannot be preempted).  A failed task
    is retried up to ``retries`` times; attempt *n* (1-based failure
    count) waits ``backoff * backoff_factor**(n-1)`` seconds, capped at
    ``backoff_max`` -- fully deterministic, no jitter, so test runs and
    CI reproduce exactly.
    """

    retries: int = 2
    timeout: Optional[float] = None
    backoff: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 30.0

    def delay_for(self, failure_count: int) -> float:
        """Backoff delay before retry number ``failure_count`` (1-based)."""
        if self.backoff <= 0.0 or failure_count <= 0:
            return 0.0
        delay = self.backoff * (self.backoff_factor ** (failure_count - 1))
        return min(delay, self.backoff_max)


# -- failure records --------------------------------------------------------

@dataclass(frozen=True)
class FailedPoint:
    """One simulation point that exhausted its retry budget.

    ``kind`` is ``"crash"`` (worker died without returning), ``"timeout"``
    (task exceeded the wall-clock budget and was terminated), ``"error"``
    (the task raised; ``detail`` holds the captured traceback), or
    ``"lost"`` (the engine returned no result and no failure record --
    a defensive catch-all that should never fire).
    """

    point: object                    # SimPoint (untyped: avoids cycle)
    kind: str
    detail: str
    attempts: int = 1

    @property
    def reason(self) -> str:
        """First meaningful line of ``detail`` for one-line tables."""
        lines = [ln.strip() for ln in self.detail.strip().splitlines()
                 if ln.strip()]
        return lines[-1] if lines else self.kind


class BatchFailure(RuntimeError):
    """A batch finished with unrecoverable point failures.

    Raised *after* every completed point has been published to the disk
    cache and memo, so the work already done is never lost; re-running
    the same sweep resumes from the cache and simulates only the
    points recorded here.
    """

    def __init__(self, failures: List[FailedPoint]):
        self.failures = list(failures)
        names = sorted({"%s/%s" % (f.point.workload, f.point.model.value)
                        for f in self.failures})
        preview = ", ".join(names[:4]) + ("..." if len(names) > 4 else "")
        super().__init__(
            "%d simulation point(s) failed after retries: %s"
            % (len(self.failures), preview))


# -- deterministic fault injection -----------------------------------------

_KINDS = ("kill", "raise", "sleep", "nospawn")


@dataclass(frozen=True)
class FaultRule:
    """One parsed ``REPRO_FAULT_SPEC`` directive."""

    index: int                       # position in the spec (marker identity)
    kind: str                        # kill | raise | sleep | nospawn
    workload: str = "*"              # task filter; "*" matches everything
    seconds: float = 0.0             # sleep duration
    once: bool = False               # disarm after the first firing

    def matches(self, workload: str) -> bool:
        return self.workload in ("*", workload)

    @property
    def marker(self) -> str:
        return "fault-%d-%s.fired" % (self.index, self.kind)


def _parse_rule(index: int, text: str) -> FaultRule:
    head, _, rest = text.strip().partition(":")
    kind = head.strip()
    if kind not in _KINDS:
        raise ValueError("unknown fault kind %r in %s=%r"
                         % (kind, FAULT_SPEC_ENV, text))
    fields = {"index": index, "kind": kind}
    for item in filter(None, (p.strip() for p in rest.split(","))):
        key, sep, value = item.partition("=")
        if key == "once" and not sep:
            fields["once"] = True
        elif key == "workload" and sep:
            fields["workload"] = value
        elif key == "seconds" and sep:
            fields["seconds"] = float(value)
        else:
            raise ValueError("bad fault option %r in %s=%r"
                             % (item, FAULT_SPEC_ENV, text))
    return FaultRule(**fields)


class FaultInjector:
    """Executes the faults described by ``REPRO_FAULT_SPEC``.

    Worker processes call :meth:`on_task` at the top of every task; the
    parent calls :meth:`fail_spawn` before starting each worker.  With no
    spec in the environment every check is a cheap no-op, so production
    runs pay nothing.
    """

    def __init__(self, rules: List[FaultRule],
                 state_dir: Optional[Path] = None):
        self.rules = list(rules)
        self.state_dir = Path(state_dir) if state_dir else None
        self._fired_local = set()

    @classmethod
    def from_env(cls) -> Optional["FaultInjector"]:
        """The injector described by the environment (None when unset)."""
        spec = os.environ.get(FAULT_SPEC_ENV, "").strip()
        if not spec:
            return None
        rules = [_parse_rule(i, part)
                 for i, part in enumerate(filter(None,
                                                 (p.strip() for p in
                                                  spec.split(";"))))]
        state = os.environ.get(FAULT_STATE_ENV, "").strip()
        return cls(rules, Path(state) if state else None)

    # -- once bookkeeping --------------------------------------------------

    def _already_fired(self, rule: FaultRule) -> bool:
        if self.state_dir is not None:
            return (self.state_dir / rule.marker).exists()
        return rule.marker in self._fired_local

    def _mark_fired(self, rule: FaultRule) -> None:
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            (self.state_dir / rule.marker).touch()
        else:
            self._fired_local.add(rule.marker)

    def _arm(self, kind: str, workload: str = "*") -> Optional[FaultRule]:
        """The first live rule of ``kind`` matching ``workload``."""
        for rule in self.rules:
            if rule.kind != kind or not rule.matches(workload):
                continue
            if rule.once and self._already_fired(rule):
                continue
            if rule.once:
                self._mark_fired(rule)
            return rule
        return None

    # -- fire sites --------------------------------------------------------

    def on_task(self, workload: str) -> None:
        """Worker-side hook; may kill the process, raise, or sleep."""
        rule = self._arm("kill", workload)
        if rule is not None:
            os._exit(KILL_EXIT_CODE)
        rule = self._arm("raise", workload)
        if rule is not None:
            raise RuntimeError("injected fault: raise on workload %r"
                               % workload)
        rule = self._arm("sleep", workload)
        if rule is not None:
            time.sleep(rule.seconds)

    def fail_spawn(self) -> bool:
        """Parent-side hook: True when worker spawning must fail."""
        return self._arm("nospawn") is not None


def parse_fault_spec(spec: str) -> List[FaultRule]:
    """Parse a fault spec string (exposed for tests and tooling)."""
    return [_parse_rule(i, part)
            for i, part in enumerate(filter(None, (p.strip() for p in
                                                   spec.split(";"))))]


__all__ = [
    "BatchFailure", "FailedPoint", "FaultInjector", "FaultRule",
    "RetryPolicy", "parse_fault_spec", "FAULT_SPEC_ENV", "FAULT_STATE_ENV",
    "KILL_EXIT_CODE",
]
